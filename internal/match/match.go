// Package match finds attribute correspondences among the forms of one
// CAFC cluster and merges them into a unified query interface — the
// downstream applications the paper names as consumers of its output
// (schema matching across Web query interfaces [16, 37] and interface
// integration [18, 19, 38] "require as inputs groups of similar forms
// such as the ones derived by our approach").
//
// The matcher is deliberately in the spirit of that literature's
// instance- and schema-level evidence: attributes correspond when their
// labels share stemmed tokens and/or their option value sets overlap,
// under the standard constraint that two attributes of the same form
// never correspond to each other.
package match

import (
	"sort"
	"strings"

	"cafc/internal/form"
	"cafc/internal/text"
)

// Attribute is one queryable field of one form.
type Attribute struct {
	// FormIndex identifies the owning form within the cluster.
	FormIndex int
	// Label is the visible label (falling back to a cleaned field name).
	Label string
	// Name is the HTML field name.
	Name string
	// Options are the value strings of select/checkbox groups (empty for
	// text inputs).
	Options []string
	// labelTerms and optionSet are the precomputed evidence.
	labelTerms map[string]bool
	optionSet  map[string]bool
}

// ExtractAttributes pulls the matchable attributes out of a form: visible,
// non-button fields, with labels recovered from <label> elements, nearby
// markup having been folded into Field.Label by the form parser, or the
// field name as a last resort.
func ExtractAttributes(formIndex int, f *form.Form) []Attribute {
	var out []Attribute
	for _, fld := range f.Fields {
		if fld.Hidden() || fld.Tag == "button" {
			continue
		}
		if fld.Tag == "input" {
			switch fld.Type {
			case "submit", "button", "reset", "image":
				continue
			}
		}
		label := fld.Label
		if label == "" {
			label = strings.NewReplacer("_", " ", "-", " ", ".", " ").Replace(fld.Name)
		}
		a := Attribute{
			FormIndex: formIndex,
			Label:     label,
			Name:      fld.Name,
			Options:   fld.Options,
		}
		a.labelTerms = termSet(text.Terms(label))
		opts := make(map[string]bool, len(fld.Options))
		for _, o := range fld.Options {
			for _, t := range text.Terms(o) {
				opts[t] = true
			}
		}
		a.optionSet = opts
		out = append(out, a)
	}
	return out
}

func termSet(ts []string) map[string]bool {
	m := make(map[string]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}

// jaccard computes |a∩b| / |a∪b| for term sets; two empty sets have
// similarity 0 (no evidence is not agreement).
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(big) < len(small) {
		small, big = big, small
	}
	inter := 0
	for t := range small {
		if big[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Similarity scores two attributes in [0, 1]: the maximum of label-token
// Jaccard and option-value Jaccard. Labels and values are alternative
// evidence channels — sites that rename a concept ("From" vs "Origin")
// still share its value domain, and vice versa.
func Similarity(a, b *Attribute) float64 {
	ls := jaccard(a.labelTerms, b.labelTerms)
	os := jaccard(a.optionSet, b.optionSet)
	if os > ls {
		return os
	}
	return ls
}

// Correspondence is a group of attributes judged to represent the same
// concept across forms.
type Correspondence struct {
	// Label is the most frequent label in the group.
	Label string
	// Members are the grouped attributes.
	Members []Attribute
	// Forms is the number of distinct forms represented.
	Forms int
}

// Options configures matching.
type Options struct {
	// Threshold is the minimum similarity for two groups to merge
	// (default 0.5).
	Threshold float64
}

// Find groups the attributes of a cluster's forms into correspondences
// with constrained average-link agglomeration: repeatedly merge the two
// most similar groups whose member forms are disjoint, until no pair
// clears the threshold. Singleton groups (attributes with no match) are
// returned too.
func Find(forms []*form.Form, opts Options) []Correspondence {
	if opts.Threshold == 0 {
		opts.Threshold = 0.5
	}
	var attrs []Attribute
	for i, f := range forms {
		attrs = append(attrs, ExtractAttributes(i, f)...)
	}
	n := len(attrs)
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	// Pairwise attribute similarities.
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := Similarity(&attrs[i], &attrs[j])
			sim[i][j], sim[j][i] = s, s
		}
	}
	groupSim := func(a, b []int) float64 {
		var sum float64
		for _, x := range a {
			for _, y := range b {
				sum += sim[x][y]
			}
		}
		return sum / float64(len(a)*len(b))
	}
	conflict := func(a, b []int) bool {
		seen := map[int]bool{}
		for _, x := range a {
			seen[attrs[x].FormIndex] = true
		}
		for _, y := range b {
			if seen[attrs[y].FormIndex] {
				return true
			}
		}
		return false
	}
	for {
		bi, bj, best := -1, -1, opts.Threshold
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if conflict(groups[i], groups[j]) {
					continue
				}
				if s := groupSim(groups[i], groups[j]); s >= best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		groups = append(groups[:bj], groups[bj+1:]...)
	}
	// Materialize, largest groups first, deterministic order.
	out := make([]Correspondence, 0, len(groups))
	for _, g := range groups {
		c := Correspondence{}
		labelCount := map[string]int{}
		formsSeen := map[int]bool{}
		for _, idx := range g {
			c.Members = append(c.Members, attrs[idx])
			labelCount[attrs[idx].Label]++
			formsSeen[attrs[idx].FormIndex] = true
		}
		c.Forms = len(formsSeen)
		bestLabel, bestN := "", 0
		for l, cnt := range labelCount {
			if cnt > bestN || (cnt == bestN && l < bestLabel) {
				bestLabel, bestN = l, cnt
			}
		}
		c.Label = bestLabel
		sort.Slice(c.Members, func(i, j int) bool {
			if c.Members[i].FormIndex != c.Members[j].FormIndex {
				return c.Members[i].FormIndex < c.Members[j].FormIndex
			}
			return c.Members[i].Name < c.Members[j].Name
		})
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// UnifiedAttribute is one field of a merged query interface.
type UnifiedAttribute struct {
	Label string
	// Options is the union of the correspondence's option values (empty
	// means a text input).
	Options []string
	// Coverage is the fraction of the cluster's forms exposing the
	// attribute.
	Coverage float64
}

// Unify builds a WISE-Integrator-style unified interface from the
// correspondences found across a cluster's forms: attributes covering at
// least minCoverage of the forms are kept, with option values unioned.
func Unify(forms []*form.Form, opts Options, minCoverage float64) []UnifiedAttribute {
	if minCoverage == 0 {
		minCoverage = 0.2
	}
	cors := Find(forms, opts)
	total := float64(len(forms))
	var out []UnifiedAttribute
	for _, c := range cors {
		cov := float64(c.Forms) / total
		if cov < minCoverage {
			continue
		}
		optSet := map[string]bool{}
		for _, m := range c.Members {
			for _, o := range m.Options {
				optSet[o] = true
			}
		}
		opts := make([]string, 0, len(optSet))
		for o := range optSet {
			opts = append(opts, o)
		}
		sort.Strings(opts)
		out = append(out, UnifiedAttribute{Label: c.Label, Options: opts, Coverage: cov})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return out[i].Label < out[j].Label
	})
	return out
}
