// Router mode: a thin stateless fan-out in front of a replica set. It
// holds no model and no WAL — just a health view of its backends,
// refreshed on a ticker. Writes (POST /ingest) go to the leader; reads
// round-robin across the healthy replicas; /healthz reports the pool
// so a load balancer above can drop a dead router. Losing a router
// loses nothing: any number of them can front the same replicas.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"cafc/internal/obs"
)

// routerParams carries the parsed flags into router mode.
type routerParams struct {
	addr     string
	leader   string
	replicas []string
	interval time.Duration
	metrics  bool
	reqlog   bool
}

// backend is one proxied replica: its base URL, a reverse proxy to it,
// and the last health verdict.
type backend struct {
	base    string
	proxy   *httputil.ReverseProxy
	healthy atomic.Bool
}

func newBackend(base string) (*backend, error) {
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("router: bad backend URL %q", base)
	}
	b := &backend{base: base, proxy: httputil.NewSingleHostReverseProxy(u)}
	b.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		b.healthy.Store(false)
		healthErr(w, "backend-unreachable", err.Error())
	}
	return b, nil
}

// router fans traffic across backends. The health sweep lives in
// check() — called by the runRouter ticker in production and directly
// by tests, so failover tests never sleep.
type router struct {
	leader  *backend
	readers []*backend
	next    atomic.Uint64
	client  *http.Client
	reg     *obs.Registry
}

func newRouter(leader string, readers []string, reg *obs.Registry) (*router, error) {
	rt := &router{client: &http.Client{Timeout: 2 * time.Second}, reg: reg}
	if leader != "" {
		b, err := newBackend(leader)
		if err != nil {
			return nil, err
		}
		rt.leader = b
	}
	for _, r := range readers {
		// The leader can appear in the read pool too; give it a distinct
		// backend object so read and write health are judged alike.
		b, err := newBackend(r)
		if err != nil {
			return nil, err
		}
		rt.readers = append(rt.readers, b)
	}
	if len(rt.readers) == 0 && rt.leader != nil {
		rt.readers = []*backend{rt.leader}
	}
	if len(rt.readers) == 0 {
		return nil, fmt.Errorf("router: no backends (-leader or -replicas required)")
	}
	return rt, nil
}

// check sweeps every backend's /healthz once and updates the health
// view and the router_replica_healthy gauges.
func (rt *router) check() {
	seen := map[string]bool{}
	probe := func(b *backend) {
		if b == nil || seen[b.base] {
			return
		}
		seen[b.base] = true
		healthy := false
		if resp, err := rt.client.Get(b.base + "/healthz"); err == nil {
			healthy = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		b.healthy.Store(healthy)
		v := 0.0
		if healthy {
			v = 1
		}
		rt.reg.Gauge("router_replica_healthy", "replica", b.base).Set(v)
	}
	probe(rt.leader)
	for _, b := range rt.readers {
		probe(b)
	}
	// A backend listed twice (leader also in the read pool) was probed
	// once; copy the verdict to every alias.
	for _, b := range rt.readers {
		if rt.leader != nil && b != rt.leader && b.base == rt.leader.base {
			b.healthy.Store(rt.leader.healthy.Load())
		}
	}
}

// pick returns the next healthy read replica, round-robin, or nil when
// none is.
func (rt *router) pick() *backend {
	n := len(rt.readers)
	for i := 0; i < n; i++ {
		b := rt.readers[int(rt.next.Add(1))%n]
		if b.healthy.Load() {
			return b
		}
	}
	return nil
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		rt.handleHealthz(w, r)
	case r.URL.Path == "/ingest":
		if rt.leader == nil || !rt.leader.healthy.Load() {
			rt.reg.Counter("router_requests_total", "backend", "none").Inc()
			healthErr(w, "no-leader", "write target down or not configured")
			return
		}
		rt.reg.Counter("router_requests_total", "backend", rt.leader.base).Inc()
		rt.leader.proxy.ServeHTTP(w, r)
	default:
		b := rt.pick()
		if b == nil {
			rt.reg.Counter("router_requests_total", "backend", "none").Inc()
			healthErr(w, "no-replica", "no healthy read replica")
			return
		}
		rt.reg.Counter("router_requests_total", "backend", b.base).Inc()
		b.proxy.ServeHTTP(w, r)
	}
}

// handleHealthz reports the pool: 200 while at least one read replica
// is healthy, 503 otherwise, with the per-replica view as JSON.
func (rt *router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	view := map[string]bool{}
	healthy := 0
	for _, b := range rt.readers {
		view[b.base] = b.healthy.Load()
		if view[b.base] {
			healthy++
		}
	}
	leaderOK := rt.leader != nil && rt.leader.healthy.Load()
	w.Header().Set("Content-Type", "application/json")
	if healthy == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"role":     "router",
		"healthy":  healthy,
		"replicas": view,
		"leader":   leaderOK,
	})
}

// runRouter is router-mode main: probe once synchronously (so the first
// request after startup already has a health view), then keep probing
// on the interval while serving.
func runRouter(p routerParams, reg *obs.Registry, ring *obs.RingSink, tracer *obs.Tracer, sigCtx context.Context) error {
	rt, err := newRouter(strings.TrimRight(p.leader, "/"), p.replicas, reg)
	if err != nil {
		return err
	}
	rt.check()

	interval := p.interval
	if interval <= 0 {
		interval = time.Second
	}
	probeCtx, stopProbe := context.WithCancel(context.Background())
	defer stopProbe()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rt.check()
			case <-probeCtx.Done():
				return
			}
		}
	}()

	var handler http.Handler = rt
	if p.metrics {
		dm := obs.DebugMux(reg, ring, true)
		dm.Handle("/", obs.InstrumentHandler(reg, handler))
		handler = dm
	}
	if p.reqlog {
		logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		handler = obs.RequestLogger(logger, tracer, handler)
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	fmt.Printf("router (%d read replicas) on http://%s/\n", len(rt.readers), ln.Addr())

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}
