// Follower mode: a read-only replica of a leader directoryd. It
// bootstraps its state dir from the leader's snapshot + WAL, tails the
// replication feed with backoff, and applies each frame through the
// same epoch-versioned publish path a leader uses — so /classify,
// /debug/quality and the browse UI serve from a model that is
// bit-identical to a leader recovered at the same epoch. Writes are not
// accepted locally: POST /ingest is forwarded to the leader (503 when
// it is unreachable), and /healthz degrades once replication lag
// exceeds the -max-lag threshold.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"cafc"
	"cafc/internal/obs"
	"cafc/internal/repl"
)

// followerParams carries the parsed flags into follower mode.
type followerParams struct {
	liveParams
	leader string
	maxLag int64
	poll   time.Duration
}

// followerServer reuses liveServer's read-side handlers (classify,
// quality, UI — they only touch the published epoch) and overrides the
// write and health surface.
type followerServer struct {
	*liveServer
	leader string
	maxLag int64
	// lag and applied are injected as closures (backed by the tailer in
	// production) so staleness tests can drive them directly.
	lag     func() int64
	applied func() int64
	client  *http.Client
}

// handleIngest forwards the write to the leader — a follower never
// grows its own WAL except through replication, or the "byte-identical
// prefix" invariant would fork.
func (fs *followerServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if fs.leader == "" {
		healthErr(w, "read-only", "follower has no leader to forward writes to")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := fs.client.Post(fs.leader+"/ingest", r.Header.Get("Content-Type"), bytes.NewReader(body))
	if err != nil {
		fs.reg.Counter("replication_forward_errors_total").Inc()
		healthErr(w, "leader-unreachable", err.Error())
		return
	}
	defer resp.Body.Close()
	fs.reg.Counter("replication_forwarded_writes_total").Inc()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleHealthz is the follower readiness probe: 503 while cold, 503
// "stale" with a JSON reason once replication lag passes the threshold
// — the signal a router uses to stop sending reads here.
func (fs *followerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if fs.live.Epoch() == nil {
		healthErr(w, "cold", "no epoch replicated yet")
		return
	}
	if lag := fs.lag(); lag > fs.maxLag {
		healthErr(w, "stale", fmt.Sprintf("replication lag %d epochs exceeds max %d", lag, fs.maxLag))
		return
	}
	io.WriteString(w, "ok\n")
}

// followerStatus embeds the live pipeline status and adds the
// replication view.
type followerStatus struct {
	cafc.LiveStatus
	Role                    string
	Leader                  string
	ReplicationAppliedEpoch int64
	ReplicationLagEpochs    int64
}

func (fs *followerServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(followerStatus{
		LiveStatus:              fs.live.Status(),
		Role:                    "follower",
		Leader:                  fs.leader,
		ReplicationAppliedEpoch: fs.applied(),
		ReplicationLagEpochs:    fs.lag(),
	})
}

func (fs *followerServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", fs.handleIngest)
	mux.HandleFunc("/status", fs.handleStatus)
	mux.HandleFunc("/healthz", fs.handleHealthz)
	mux.HandleFunc("/classify", withSLO(fs.sloClassify, fs.liveServer.handleClassify))
	// Search serves locally from the replicated index — followers scale
	// the read path, and a follower at epoch E answers byte-identically
	// to the leader at E.
	mux.HandleFunc("/search", fs.liveServer.handleSearch)
	mux.HandleFunc("/debug/quality", fs.handleQuality)
	mux.HandleFunc("/", fs.handleUI)
	return mux
}

// runFollower is follower-mode main: bootstrap the state dir from the
// leader, recover a read-only pipeline from it, tail the replication
// feed in the background, and serve until a signal.
func runFollower(p followerParams, reg *obs.Registry, ring *obs.RingSink, tracer *obs.Tracer, sigCtx context.Context) error {
	client := &repl.Client{Base: p.leader, HTTP: &http.Client{Timeout: 30 * time.Second}}
	log.Printf("bootstrapping follower state in %s from %s", p.data, p.leader)
	if err := repl.Bootstrap(sigCtx, client, p.data); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}

	ls := &liveServer{reg: reg}
	ls.sloClassify = obs.NewSLO(reg, "classify", p.sloClassifyMS/1000, 0)
	opts := cafc.Options{SkipNonSearchable: true, Metrics: reg}
	cfg := cafc.LiveConfig{
		K:              p.k,
		Seed:           p.seed,
		DriftThreshold: p.drift,
		Dir:            p.data,
		SnapshotEvery:  p.snapshotEvery,
		// Followers shard parse/embed like the leader (epochs are
		// worker-count-independent) but never group-commit: their durable
		// record count is the replication resume offset.
		IngestWorkers: p.ingestWorkers,
		OnPublish:     ls.onPublish,
		Quality:        &cafc.QualityConfig{Seed: p.seed},
		Search:         &cafc.SearchConfig{},
	}
	live, err := cafc.RecoverFollower(cfg, opts)
	if err != nil {
		return err
	}
	ls.live = live

	tailer := &repl.Tailer{Source: client, Target: live, Interval: p.poll, Metrics: reg}
	fs := &followerServer{
		liveServer: ls,
		leader:     p.leader,
		maxLag:     p.maxLag,
		lag:        tailer.Lag,
		applied:    live.AppliedEpoch,
		client:     &http.Client{Timeout: 30 * time.Second},
	}
	tailCtx, stopTail := context.WithCancel(context.Background())
	defer stopTail()
	go tailer.Run(tailCtx)

	var handler http.Handler = fs.mux()
	if p.metrics {
		dm := obs.DebugMux(reg, ring, true)
		dm.Handle("/", obs.InstrumentHandler(reg, handler))
		handler = dm
	}
	if p.reqlog {
		logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		handler = obs.RequestLogger(logger, tracer, handler)
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	mode := "cold"
	if e := live.Epoch(); e != nil {
		mode = fmt.Sprintf("epoch %d, %d pages", e.Epoch, e.Corpus.Len())
	}
	fmt.Printf("follower directory (%s, leader %s) on http://%s/\n", mode, p.leader, ln.Addr())
	if p.metrics {
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}
	log.Print("stopping replication tail")
	stopTail()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := live.Drain(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained")
	return nil
}
