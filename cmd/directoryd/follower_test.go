package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cafc"
	"cafc/internal/repl"
	"cafc/internal/webgen"
)

// newTestFollowerServer builds a followerServer over an already-warm
// read-only pipeline, with lag and applied driven by the returned
// pointers — no tailer, no clock, no sleeps.
func newTestFollowerServer(t *testing.T, leader string) (*followerServer, *int64, func()) {
	t.Helper()
	c := genCorpus(t, 51, 24)
	corpus, err := cafc.NewCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)
	ls := &liveServer{}
	live, err := cafc.NewLive(corpus, c, cl, cafc.LiveConfig{
		K: 4, Seed: 1, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish, Search: &cafc.SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	lag := new(int64)
	fs := &followerServer{
		liveServer: ls,
		leader:     leader,
		maxLag:     64,
		lag:        func() int64 { return *lag },
		applied:    func() int64 { return live.Status().Epoch },
		client:     http.DefaultClient,
	}
	return fs, lag, func() { live.Close() }
}

// genCorpus builds n generated form pages as documents.
func genCorpus(t *testing.T, seed int64, n int) []cafc.Document {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	var docs []cafc.Document
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
	}
	return docs
}

// waitServe polls cond until it holds or the deadline passes.
func waitServe(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFollowerHealthzStaleness pins the staleness contract: a follower
// within -max-lag answers 200, one past it flips to 503 with a JSON
// reason naming the lag, and a cold follower (no epoch yet) is 503 too.
func TestFollowerHealthzStaleness(t *testing.T) {
	fs, lag, stop := newTestFollowerServer(t, "")
	defer stop()
	ts := httptest.NewServer(fs.mux())
	defer ts.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz at lag 0 = %d %q, want 200 ok", code, body)
	}
	*lag = fs.maxLag // at the threshold is still healthy
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("healthz at lag == maxLag = %d, want 200", code)
	}
	*lag = fs.maxLag + 1
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz past maxLag = %d, want 503", code)
	}
	var reason map[string]string
	if err := json.Unmarshal([]byte(body), &reason); err != nil {
		t.Fatalf("stale healthz body is not JSON: %q", body)
	}
	if reason["status"] != "stale" || !strings.Contains(reason["reason"], "replication lag 65") {
		t.Fatalf("stale healthz = %+v", reason)
	}

	// Cold follower: no epoch replicated yet.
	cold := &followerServer{
		liveServer: &liveServer{live: mustColdLive(t)},
		maxLag:     64,
		lag:        func() int64 { return 0 },
		applied:    func() int64 { return 0 },
		client:     http.DefaultClient,
	}
	rec := httptest.NewRecorder()
	cold.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "cold") {
		t.Fatalf("cold healthz = %d %q, want 503 cold", rec.Code, rec.Body.String())
	}
}

func mustColdLive(t *testing.T) *cafc.Live {
	t.Helper()
	l, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestFollowerStatusReplicationFields pins the /status surface a
// follower adds over a leader's: role, leader URL, applied epoch and
// lag.
func TestFollowerStatusReplicationFields(t *testing.T) {
	fs, lag, stop := newTestFollowerServer(t, "http://leader.example:8080")
	defer stop()
	*lag = 3
	ts := httptest.NewServer(fs.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st followerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || st.Leader != "http://leader.example:8080" {
		t.Fatalf("role/leader = %q/%q", st.Role, st.Leader)
	}
	if st.ReplicationLagEpochs != 3 {
		t.Fatalf("ReplicationLagEpochs = %d, want 3", st.ReplicationLagEpochs)
	}
	if st.ReplicationAppliedEpoch != st.Epoch || st.ReplicationAppliedEpoch == 0 {
		t.Fatalf("ReplicationAppliedEpoch = %d, epoch = %d", st.ReplicationAppliedEpoch, st.Epoch)
	}
}

// TestFollowerForwardsWrites pins the write path: POST /ingest on a
// follower lands on the leader byte for byte, the leader's response
// passes back through, and a dead leader degrades to 503 rather than a
// local write (which would fork the WAL).
func TestFollowerForwardsWrites(t *testing.T) {
	var got []byte
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ = io.ReadAll(r.Body)
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, "queued")
	}))
	fs, _, stop := newTestFollowerServer(t, leader.URL)
	defer stop()
	ts := httptest.NewServer(fs.mux())
	defer ts.Close()

	doc := `{"url":"http://x/","html":"<form></form>"}`
	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || string(body) != "queued" {
		t.Fatalf("forwarded ingest = %d %q, want 202 queued", resp.StatusCode, body)
	}
	if string(got) != doc {
		t.Fatalf("leader received %q, want %q", got, doc)
	}

	// GET is not a write.
	resp, err = http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest = %d, want 405", resp.StatusCode)
	}

	// Leader down: refuse, never write locally.
	leader.Close()
	resp, err = http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("leader-unreachable")) {
		t.Fatalf("ingest with dead leader = %d %q, want 503 leader-unreachable", resp.StatusCode, body)
	}
}

// TestFollowerServesLeaderState is the end-to-end HTTP pin: a follower
// bootstrapped and tailed from a leader's replication endpoint answers
// /classify with the byte-identical JSON the leader produces.
func TestFollowerServesLeaderState(t *testing.T) {
	docs := genCorpus(t, 53, 32)
	ldir := t.TempDir()
	lls := &liveServer{}
	leaderLive, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{
		K: 4, Seed: 9, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
		Dir: ldir, OnPublish: lls.onPublish, Search: &cafc.SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderLive.Close()
	lls.live = leaderLive
	lmux := lls.mux()
	(&repl.Server{Dir: ldir}).Register(lmux)
	leaderTS := httptest.NewServer(lmux)
	defer leaderTS.Close()

	for _, d := range docs {
		if err := leaderLive.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitServe(t, "leader ingest applied", func() bool {
		e := leaderLive.Epoch()
		return e != nil && e.Corpus.Len() == len(docs)
	})

	fdir := t.TempDir()
	client := &repl.Client{Base: leaderTS.URL}
	if err := repl.Bootstrap(context.Background(), client, fdir); err != nil {
		t.Fatal(err)
	}
	fls := &liveServer{}
	followerLive, err := cafc.RecoverFollower(cafc.LiveConfig{
		K: 4, Seed: 9, Dir: fdir, OnPublish: fls.onPublish,
		Search: &cafc.SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer followerLive.Close()
	fls.live = followerLive
	tailer := &repl.Tailer{Source: client, Target: followerLive}
	if err := tailer.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	fs := &followerServer{
		liveServer: fls,
		leader:     leaderTS.URL,
		maxLag:     64,
		lag:        tailer.Lag,
		applied:    followerLive.AppliedEpoch,
		client:     http.DefaultClient,
	}
	followerTS := httptest.NewServer(fs.mux())
	defer followerTS.Close()

	if followerLive.AppliedEpoch() != leaderLive.Status().Epoch {
		t.Fatalf("follower epoch %d, leader %d", followerLive.AppliedEpoch(), leaderLive.Status().Epoch)
	}
	for _, d := range docs[:8] {
		payload, _ := json.Marshal(map[string]string{"url": d.URL, "html": d.HTML})
		classify := func(base string) []byte {
			t.Helper()
			resp, err := http.Post(base+"/classify", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s/classify = %d: %s", base, resp.StatusCode, body)
			}
			return body
		}
		if l, f := classify(leaderTS.URL), classify(followerTS.URL); !bytes.Equal(l, f) {
			t.Fatalf("classify(%s) diverged:\nleader:   %s\nfollower: %s", d.URL, l, f)
		}
	}

	// /search serves locally on the follower, byte-identical to the
	// leader at the same epoch — cached or not (X-Cache is a header, not
	// part of the body).
	for _, q := range []string{"hotel+rooms", "cheap+flights", "search+jobs"} {
		fetch := func(base string) ([]byte, string) {
			t.Helper()
			resp, err := http.Get(base + "/search?q=" + q + "&k=20")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s/search = %d: %s", base, resp.StatusCode, body)
			}
			return body, resp.Header.Get("X-Cache")
		}
		l, lc := fetch(leaderTS.URL)
		f, fc := fetch(followerTS.URL)
		if !bytes.Equal(l, f) {
			t.Fatalf("search(%s) diverged:\nleader:   %s\nfollower: %s", q, l, f)
		}
		if lc != "MISS" || fc != "MISS" {
			t.Fatalf("first search(%s) X-Cache leader=%q follower=%q, want MISS", q, lc, fc)
		}
		f2, fc2 := fetch(followerTS.URL)
		if fc2 != "HIT" || !bytes.Equal(f, f2) {
			t.Fatalf("repeat search(%s) X-Cache=%q, want HIT with identical body", q, fc2)
		}
	}
}
