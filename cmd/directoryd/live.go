// Live mode: directoryd grows its directory while serving it. Documents
// arrive over POST /ingest into the bounded stream queue; each published
// epoch atomically swaps in a freshly built directory UI, so browsing,
// search and classification never block on (or observe a half-built)
// model.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cafc"
	"cafc/internal/dataset"
	"cafc/internal/directory"
	"cafc/internal/obs"
	"cafc/internal/repl"
	"cafc/internal/retry"
	"cafc/internal/stream"
	"cafc/internal/webgraph"
)

// liveParams carries the parsed flags into live mode.
type liveParams struct {
	in            string
	addr          string
	data          string
	k             int
	seed          int64
	metrics       bool
	retries       int
	budget        int
	batch         int
	queue         int
	flush         time.Duration
	drift         float64
	snapshotEvery int
	ingestWorkers int
	groupCommit   int
	commitWindow  time.Duration
	sloClassifyMS float64
	sloIngestMS   float64
	reqlog        bool
	// role is "" (standalone live) or "leader" (also serve /repl/*).
	role string
}

// liveServer is the HTTP face of a cafc.Live: it holds the latest
// directory UI behind an atomic pointer (swapped on every epoch
// publish) and exposes the ingest/status/classify/health endpoints.
type liveServer struct {
	live *cafc.Live
	ui   atomic.Pointer[http.Handler]
	reg  *obs.Registry

	sloClassify *obs.SLO
	sloIngest   *obs.SLO
}

// onPublish rebuilds the directory UI for a freshly published epoch and
// swaps it in. It runs in the ingest worker goroutine; readers keep
// serving the previous UI until the store below.
func (ls *liveServer) onPublish(e *cafc.LiveEpoch) {
	html := make(map[string]string, len(e.Docs))
	for _, d := range e.Docs {
		html[d.URL] = d.HTML
	}
	labels := make([]string, len(e.Clustering.TopTerms))
	for i, terms := range e.Clustering.TopTerms {
		labels[i] = strings.Join(terms, " ")
	}
	// The search index freezes before the epoch swap, so its
	// discriminative labels ride on the epoch — they replace the raw
	// top-term labels wherever available ("cluster 3" → named cluster).
	for i := range labels {
		if i < len(e.SearchLabels) && e.SearchLabels[i] != "" {
			labels[i] = e.SearchLabels[i]
		}
	}
	h := directory.Build(e.Clustering.Clusters, labels, html).Handler()
	ls.ui.Store(&h)
}

// handleSearch is the JSON retrieval endpoint: ranked top-k hits with
// labeled dynamic facets from the current epoch's index. X-Cache
// reports HIT/MISS — the header rather than the body, so leader and
// follower responses stay byte-identical regardless of cache state.
func (ls *liveServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "q required", http.StatusBadRequest)
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil {
			http.Error(w, "k must be an integer", http.StatusBadRequest)
			return
		}
	}
	res, cached, err := ls.live.Search(q, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	json.NewEncoder(w).Encode(res)
}

// ingestRequest is one POST /ingest payload element.
type ingestRequest struct {
	URL  string `json:"url"`
	HTML string `json:"html"`
}

func (ls *liveServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Accept a single {"url","html"} object or an array of them.
	var docs []ingestRequest
	if err := json.Unmarshal(body, &docs); err != nil {
		var one ingestRequest
		if err := json.Unmarshal(body, &one); err != nil {
			http.Error(w, "body must be {\"url\",\"html\"} or an array of them", http.StatusBadRequest)
			return
		}
		docs = []ingestRequest{one}
	}
	queued := 0
	for _, d := range docs {
		if d.URL == "" {
			http.Error(w, "url required", http.StatusBadRequest)
			return
		}
		if err := ls.live.Ingest(cafc.Document{URL: d.URL, HTML: d.HTML}); err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, cafc.ErrBacklog) {
				status = http.StatusTooManyRequests
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]any{"queued": queued, "error": err.Error()})
			return
		}
		queued++
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"queued": queued})
}

func (ls *liveServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ls.live.Status())
}

// handleHealthz is the readiness probe: 503 while cold (no epoch), and
// 503 "degraded" with a JSON reason when the ingest queue is close to
// saturation or any circuit breaker is open — the two states in which
// the directory is up but load-shedding.
func (ls *liveServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if ls.live.Epoch() == nil {
		healthErr(w, "cold", "no epoch published yet")
		return
	}
	if reason, degraded := healthProblem(ls.live.Status(), ls.reg); degraded {
		healthErr(w, "degraded", reason)
		return
	}
	io.WriteString(w, "ok\n")
}

// healthProblem decides degradation from the pipeline status and the
// metrics registry: an ingest queue at >= 90% of capacity (admissions
// about to bounce with 429s) or any open circuit breaker.
func healthProblem(s cafc.LiveStatus, reg *obs.Registry) (string, bool) {
	if s.QueueCap > 0 {
		if sat := float64(s.QueueDepth) / float64(s.QueueCap); sat >= 0.9 {
			return fmt.Sprintf("ingest queue %d%% full (%d/%d)", int(sat*100), s.QueueDepth, s.QueueCap), true
		}
	}
	if name, open := openBreaker(reg); open {
		return fmt.Sprintf("circuit breaker %s open", name), true
	}
	return "", false
}

func healthErr(w http.ResponseWriter, status, reason string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]string{"status": status, "reason": reason})
}

// openBreaker scans the registry for any breaker_state gauge sitting at
// Open (2) and reports which component tripped.
func openBreaker(reg *obs.Registry) (string, bool) {
	if reg == nil {
		return "", false
	}
	for _, s := range reg.Snapshot() {
		if s.Name != "breaker_state" || s.Value != float64(retry.Open) {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "component" {
				return l.Value, true
			}
		}
		return "unknown", true
	}
	return "", false
}

// handleQuality serves the online quality monitor's snapshot ring: the
// latest measurement plus the retained history, oldest first.
func (ls *liveServer) handleQuality(w http.ResponseWriter, r *http.Request) {
	hist := ls.live.QualityHistory()
	if hist == nil {
		http.Error(w, "quality monitor not configured", http.StatusNotFound)
		return
	}
	latest, _ := ls.live.Quality()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"latest": latest, "history": hist})
}

// withSLO times a handler and feeds the wall-clock duration to the
// endpoint's SLO (nil SLO — no -metrics — runs the handler bare).
func withSLO(s *obs.SLO, h http.HandlerFunc) http.HandlerFunc {
	if s == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.Observe(time.Since(start).Seconds())
	}
}

func (ls *liveServer) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	e := ls.live.Epoch()
	if e == nil {
		http.Error(w, "cold: no epoch published yet", http.StatusServiceUnavailable)
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, ok, err := e.Classify(cafc.Document{URL: req.URL, HTML: req.HTML})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"cluster":    p.Cluster,
		"label":      p.Label,
		"similarity": p.Similarity,
		"ok":         ok,
		"epoch":      e.Epoch,
	})
}

// handleUI serves the current epoch's directory pages, or 503 before the
// first epoch exists.
func (ls *liveServer) handleUI(w http.ResponseWriter, r *http.Request) {
	h := ls.ui.Load()
	if h == nil {
		http.Error(w, "cold: no epoch published yet", http.StatusServiceUnavailable)
		return
	}
	(*h).ServeHTTP(w, r)
}

func (ls *liveServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", withSLO(ls.sloIngest, ls.handleIngest))
	mux.HandleFunc("/status", ls.handleStatus)
	mux.HandleFunc("/healthz", ls.handleHealthz)
	mux.HandleFunc("/classify", withSLO(ls.sloClassify, ls.handleClassify))
	// The JSON search API shadows the directory UI's HTML /search page in
	// live mode; the HTML form lives on the static `serve` mode only.
	mux.HandleFunc("/search", ls.handleSearch)
	mux.HandleFunc("/debug/quality", ls.handleQuality)
	mux.HandleFunc("/", ls.handleUI)
	return mux
}

// startLive builds the cafc.Live behind the server: recovery from an
// existing data dir wins; otherwise a dataset (when given) seeds the
// genesis epoch; otherwise the directory starts cold and the first
// ingested batch founds the model.
func startLive(p liveParams, reg *obs.Registry) (*liveServer, error) {
	ls := &liveServer{reg: reg}
	ls.sloClassify = obs.NewSLO(reg, "classify", p.sloClassifyMS/1000, 0)
	ls.sloIngest = obs.NewSLO(reg, "ingest", p.sloIngestMS/1000, 0)
	opts := cafc.Options{SkipNonSearchable: true, Metrics: reg}
	if p.retries > 0 {
		opts.Retry = &cafc.Retry{MaxAttempts: p.retries, Budget: p.budget, Seed: p.seed}
	}
	// The quality monitor is always on in live mode: the reservoir bounds
	// its per-epoch cost, and /debug/quality is the ops window into it.
	// Gold labels (when the genesis dataset carries them) arrive below.
	qcfg := &cafc.QualityConfig{Seed: p.seed}
	cfg := cafc.LiveConfig{
		K:              p.k,
		Seed:           p.seed,
		QueueSize:      p.queue,
		BatchSize:      p.batch,
		FlushInterval:  p.flush,
		DriftThreshold: p.drift,
		Dir:            p.data,
		SnapshotEvery:  p.snapshotEvery,
		IngestWorkers:  p.ingestWorkers,
		GroupCommit:    p.groupCommit,
		CommitWindow:   p.commitWindow,
		OnPublish:      ls.onPublish,
		Quality:        qcfg,
		// Retrieval is always on in live mode: the index grows with each
		// batch and swaps with the classifier, so /search is never stale.
		Search: &cafc.SearchConfig{},
	}

	if p.data != "" && stream.HasState(p.data) {
		log.Printf("recovering live directory from %s", p.data)
		live, err := cafc.RecoverLive(cfg, opts)
		if err != nil {
			return nil, err
		}
		ls.live = live
		return ls, nil
	}

	var (
		corpus *cafc.Corpus
		docs   []cafc.Document
		cl     *cafc.Clustering
	)
	if p.in != "" {
		d, err := dataset.Load(p.in)
		if err != nil {
			return nil, err
		}
		c := d.Corpus()
		for _, u := range c.FormPages {
			docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		}
		if len(c.Labels) > 0 {
			qcfg.Labels = make(map[string]string, len(c.Labels))
			for u, dom := range c.Labels {
				qcfg.Labels[u] = string(dom)
			}
		}
		corpus, err = cafc.NewCorpus(docs, opts)
		if err != nil {
			return nil, err
		}
		g := webgraph.FromCorpus(c)
		svc := webgraph.NewBacklinkService(g, 100, 0, p.seed)
		svc.Metrics = reg
		cl = corpus.ClusterCH(p.k, svc.Backlinks, c.RootOf, p.seed)
		if cl.Degraded != "" {
			log.Printf("genesis clustering degraded: %s", cl.Degraded)
		}
	}
	live, err := cafc.NewLive(corpus, docs, cl, cfg, opts)
	if err != nil {
		return nil, err
	}
	ls.live = live
	return ls, nil
}

// runLive is live-mode main: start the pipeline, serve until a signal,
// then stop HTTP intake and drain the stream (flushing the queue and
// writing the final snapshot).
func runLive(p liveParams, reg *obs.Registry, ring *obs.RingSink, tracer *obs.Tracer, sigCtx context.Context) error {
	ls, err := startLive(p, reg)
	if err != nil {
		return err
	}

	m := ls.mux()
	if p.role == "leader" {
		// The leader's replication feed reads the state dir directly, so
		// it serves the durable prefix even while the worker appends.
		(&repl.Server{Dir: p.data, Metrics: reg}).Register(m)
	}
	var handler http.Handler = m
	if p.metrics {
		dm := obs.DebugMux(reg, ring, true)
		dm.Handle("/", obs.InstrumentHandler(reg, handler))
		handler = dm
	}
	if p.reqlog {
		logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		handler = obs.RequestLogger(logger, tracer, handler)
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	mode := "cold"
	if e := ls.live.Epoch(); e != nil {
		mode = fmt.Sprintf("epoch %d, %d pages", e.Epoch, e.Corpus.Len())
	}
	fmt.Printf("live directory (%s) on http://%s/\n", mode, ln.Addr())
	if p.metrics {
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}
	log.Print("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := ls.live.Drain(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained")
	return nil
}
