// Live mode: directoryd grows its directory while serving it. Documents
// arrive over POST /ingest into the bounded stream queue; each published
// epoch atomically swaps in a freshly built directory UI, so browsing,
// search and classification never block on (or observe a half-built)
// model.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"cafc"
	"cafc/internal/dataset"
	"cafc/internal/directory"
	"cafc/internal/obs"
	"cafc/internal/stream"
	"cafc/internal/webgraph"
)

// liveParams carries the parsed flags into live mode.
type liveParams struct {
	in            string
	addr          string
	data          string
	k             int
	seed          int64
	metrics       bool
	retries       int
	budget        int
	batch         int
	queue         int
	flush         time.Duration
	drift         float64
	snapshotEvery int
}

// liveServer is the HTTP face of a cafc.Live: it holds the latest
// directory UI behind an atomic pointer (swapped on every epoch
// publish) and exposes the ingest/status/classify/health endpoints.
type liveServer struct {
	live *cafc.Live
	ui   atomic.Pointer[http.Handler]
}

// onPublish rebuilds the directory UI for a freshly published epoch and
// swaps it in. It runs in the ingest worker goroutine; readers keep
// serving the previous UI until the store below.
func (ls *liveServer) onPublish(e *cafc.LiveEpoch) {
	html := make(map[string]string, len(e.Docs))
	for _, d := range e.Docs {
		html[d.URL] = d.HTML
	}
	labels := make([]string, len(e.Clustering.TopTerms))
	for i, terms := range e.Clustering.TopTerms {
		labels[i] = strings.Join(terms, " ")
	}
	h := directory.Build(e.Clustering.Clusters, labels, html).Handler()
	ls.ui.Store(&h)
}

// ingestRequest is one POST /ingest payload element.
type ingestRequest struct {
	URL  string `json:"url"`
	HTML string `json:"html"`
}

func (ls *liveServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Accept a single {"url","html"} object or an array of them.
	var docs []ingestRequest
	if err := json.Unmarshal(body, &docs); err != nil {
		var one ingestRequest
		if err := json.Unmarshal(body, &one); err != nil {
			http.Error(w, "body must be {\"url\",\"html\"} or an array of them", http.StatusBadRequest)
			return
		}
		docs = []ingestRequest{one}
	}
	queued := 0
	for _, d := range docs {
		if d.URL == "" {
			http.Error(w, "url required", http.StatusBadRequest)
			return
		}
		if err := ls.live.Ingest(cafc.Document{URL: d.URL, HTML: d.HTML}); err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, cafc.ErrBacklog) {
				status = http.StatusTooManyRequests
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]any{"queued": queued, "error": err.Error()})
			return
		}
		queued++
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"queued": queued})
}

func (ls *liveServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ls.live.Status())
}

func (ls *liveServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if ls.live.Epoch() == nil {
		http.Error(w, "cold: no epoch published yet", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (ls *liveServer) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	e := ls.live.Epoch()
	if e == nil {
		http.Error(w, "cold: no epoch published yet", http.StatusServiceUnavailable)
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p, ok, err := e.Classify(cafc.Document{URL: req.URL, HTML: req.HTML})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"cluster":    p.Cluster,
		"label":      p.Label,
		"similarity": p.Similarity,
		"ok":         ok,
		"epoch":      e.Epoch,
	})
}

// handleUI serves the current epoch's directory pages, or 503 before the
// first epoch exists.
func (ls *liveServer) handleUI(w http.ResponseWriter, r *http.Request) {
	h := ls.ui.Load()
	if h == nil {
		http.Error(w, "cold: no epoch published yet", http.StatusServiceUnavailable)
		return
	}
	(*h).ServeHTTP(w, r)
}

func (ls *liveServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", ls.handleIngest)
	mux.HandleFunc("/status", ls.handleStatus)
	mux.HandleFunc("/healthz", ls.handleHealthz)
	mux.HandleFunc("/classify", ls.handleClassify)
	mux.HandleFunc("/", ls.handleUI)
	return mux
}

// startLive builds the cafc.Live behind the server: recovery from an
// existing data dir wins; otherwise a dataset (when given) seeds the
// genesis epoch; otherwise the directory starts cold and the first
// ingested batch founds the model.
func startLive(p liveParams, reg *obs.Registry) (*liveServer, error) {
	ls := &liveServer{}
	opts := cafc.Options{SkipNonSearchable: true, Metrics: reg}
	if p.retries > 0 {
		opts.Retry = &cafc.Retry{MaxAttempts: p.retries, Budget: p.budget, Seed: p.seed}
	}
	cfg := cafc.LiveConfig{
		K:              p.k,
		Seed:           p.seed,
		QueueSize:      p.queue,
		BatchSize:      p.batch,
		FlushInterval:  p.flush,
		DriftThreshold: p.drift,
		Dir:            p.data,
		SnapshotEvery:  p.snapshotEvery,
		OnPublish:      ls.onPublish,
	}

	if p.data != "" && stream.HasState(p.data) {
		log.Printf("recovering live directory from %s", p.data)
		live, err := cafc.RecoverLive(cfg, opts)
		if err != nil {
			return nil, err
		}
		ls.live = live
		return ls, nil
	}

	var (
		corpus *cafc.Corpus
		docs   []cafc.Document
		cl     *cafc.Clustering
	)
	if p.in != "" {
		d, err := dataset.Load(p.in)
		if err != nil {
			return nil, err
		}
		c := d.Corpus()
		for _, u := range c.FormPages {
			docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		}
		corpus, err = cafc.NewCorpus(docs, opts)
		if err != nil {
			return nil, err
		}
		g := webgraph.FromCorpus(c)
		svc := webgraph.NewBacklinkService(g, 100, 0, p.seed)
		svc.Metrics = reg
		cl = corpus.ClusterCH(p.k, svc.Backlinks, c.RootOf, p.seed)
		if cl.Degraded != "" {
			log.Printf("genesis clustering degraded: %s", cl.Degraded)
		}
	}
	live, err := cafc.NewLive(corpus, docs, cl, cfg, opts)
	if err != nil {
		return nil, err
	}
	ls.live = live
	return ls, nil
}

// runLive is live-mode main: start the pipeline, serve until a signal,
// then stop HTTP intake and drain the stream (flushing the queue and
// writing the final snapshot).
func runLive(p liveParams, reg *obs.Registry, ring *obs.RingSink, sigCtx context.Context) error {
	ls, err := startLive(p, reg)
	if err != nil {
		return err
	}

	var handler http.Handler = ls.mux()
	if p.metrics {
		dm := obs.DebugMux(reg, ring, true)
		dm.Handle("/", obs.InstrumentHandler(reg, handler))
		handler = dm
	}

	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	mode := "cold"
	if e := ls.live.Epoch(); e != nil {
		mode = fmt.Sprintf("epoch %d, %d pages", e.Epoch, e.Corpus.Len())
	}
	fmt.Printf("live directory (%s) on http://%s/\n", mode, ln.Addr())
	if p.metrics {
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}
	log.Print("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := ls.live.Drain(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained")
	return nil
}
