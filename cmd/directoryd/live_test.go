package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cafc"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgen"
)

// TestServeWhileIngest is the serve-while-ingest acceptance pin, run
// under -race in check.sh: readers hammer the directory UI, /classify
// and /status while a writer streams documents through POST /ingest.
// Every query must succeed (the epoch swap is atomic — there is no
// half-built window), and the observed epoch sequence must be
// monotonically non-decreasing.
func TestServeWhileIngest(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 31, FormPages: 60})
	var docs []cafc.Document
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
	}
	genesis := docs[:20]
	corpus, err := cafc.NewCorpus(genesis)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)

	ls := &liveServer{}
	live, err := cafc.NewLive(corpus, genesis, cl, cafc.LiveConfig{
		K: 4, Seed: 1, BatchSize: 4, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish, Search: &cafc.SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	defer live.Close()

	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	// Readiness: genesis was published, so /healthz must be green.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d before ingest", resp.StatusCode)
	}

	var (
		failed  atomic.Int64
		queries atomic.Int64
		done    = make(chan struct{})
		wg      sync.WaitGroup
	)
	paths := []string{"/", "/search?q=title", "/status", "/healthz"}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lastEpoch int64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := paths[(i+id)%len(paths)]
				resp, err := ts.Client().Get(ts.URL + p)
				if err != nil {
					failed.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				queries.Add(1)
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					t.Errorf("GET %s = %d: %s", p, resp.StatusCode, body)
					return
				}
				if p == "/status" {
					var st cafc.LiveStatus
					if err := json.Unmarshal(body, &st); err != nil {
						failed.Add(1)
						t.Errorf("status decode: %v", err)
						return
					}
					if st.Epoch < lastEpoch {
						failed.Add(1)
						t.Errorf("epoch went backwards: %d after %d", st.Epoch, lastEpoch)
						return
					}
					lastEpoch = st.Epoch
				}
			}
		}(r)
	}
	// One classify reader exercising the per-epoch classifier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			body, _ := json.Marshal(ingestRequest{URL: docs[i%20].URL, HTML: docs[i%20].HTML})
			resp, err := ts.Client().Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				failed.Add(1)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			queries.Add(1)
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				t.Errorf("POST /classify = %d", resp.StatusCode)
				return
			}
		}
	}()

	// The writer: stream the remaining 40 documents one POST at a time.
	for _, d := range docs[20:] {
		body, _ := json.Marshal(ingestRequest{URL: d.URL, HTML: d.HTML})
		for {
			resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(time.Millisecond) // backpressure: retry
				continue
			}
			t.Fatalf("POST /ingest = %d", resp.StatusCode)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e := live.Epoch(); e != nil && e.Corpus.Len() == len(docs) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d queries failed during ingest", failed.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no reader queries ran — test is vacuous")
	}
	e := live.Epoch()
	if e.Corpus.Len() != len(docs) {
		t.Fatalf("final corpus %d pages, want %d", e.Corpus.Len(), len(docs))
	}
	// The UI swapped to the final epoch: the front page lists every
	// cluster of the latest clustering.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(page, []byte(fmt.Sprintf("%d databases", len(docs)))) &&
		!bytes.Contains(page, []byte("cluster")) {
		t.Errorf("front page looks stale: %.200s", page)
	}
}

// TestColdHealthz pins readiness gating: a cold live server reports 503
// everywhere until the first epoch is founded by ingest.
func TestColdHealthz(t *testing.T) {
	ls := &liveServer{}
	live, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{
		K: 2, BatchSize: 4, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	defer live.Close()
	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	for _, p := range []string{"/healthz", "/"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("cold GET %s = %d, want 503", p, resp.StatusCode)
		}
	}

	c := webgen.Generate(webgen.Config{Seed: 37, FormPages: 8})
	var payload []ingestRequest
	for _, u := range c.FormPages {
		payload = append(payload, ingestRequest{URL: u, HTML: c.ByURL[u].HTML})
	}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /ingest = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return // founded: ready
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("healthz never turned ready after founding ingest: %+v", live.Status())
}

// TestHealthProblem pins the degradation rules /healthz applies: queue
// saturation at 90% of capacity and any open circuit breaker.
func TestHealthProblem(t *testing.T) {
	if reason, bad := healthProblem(cafc.LiveStatus{QueueDepth: 10, QueueCap: 100}, nil); bad {
		t.Fatalf("10%% queue reported degraded: %s", reason)
	}
	reason, bad := healthProblem(cafc.LiveStatus{QueueDepth: 95, QueueCap: 100}, nil)
	if !bad || !strings.Contains(reason, "queue") {
		t.Fatalf("saturated queue: degraded=%v reason=%q", bad, reason)
	}

	reg := obs.NewRegistry()
	reg.Gauge("breaker_state", "component", "backlink").Set(float64(retry.Closed))
	if reason, bad := healthProblem(cafc.LiveStatus{QueueCap: 100}, reg); bad {
		t.Fatalf("closed breaker reported degraded: %s", reason)
	}
	reg.Gauge("breaker_state", "component", "backlink").Set(float64(retry.Open))
	reason, bad = healthProblem(cafc.LiveStatus{QueueCap: 100}, reg)
	if !bad || !strings.Contains(reason, "backlink") {
		t.Fatalf("open breaker: degraded=%v reason=%q", bad, reason)
	}
}

// TestHealthzDegradedHTTP drives the full handler: an open breaker in
// the registry turns a healthy live server into 503 + JSON reason.
func TestHealthzDegradedHTTP(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 41, FormPages: 12})
	var docs []cafc.Document
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
	}
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(3, 1)
	reg := obs.NewRegistry()
	ls := &liveServer{reg: reg}
	live, err := cafc.NewLive(corpus, docs, cl, cafc.LiveConfig{K: 3, Seed: 1, OnPublish: ls.onPublish})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	defer live.Close()
	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d: %s", code, body)
	}
	reg.Gauge("breaker_state", "component", "fetch").Set(float64(retry.Open))
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with open breaker = %d: %s", code, body)
	}
	var payload map[string]string
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("degraded /healthz body not JSON: %s", body)
	}
	if payload["status"] != "degraded" || !strings.Contains(payload["reason"], "fetch") {
		t.Fatalf("degraded payload = %v", payload)
	}
	// Recovery: breaker closes, health returns.
	reg.Gauge("breaker_state", "component", "fetch").Set(float64(retry.Closed))
	if code, body := get(); code != http.StatusOK {
		t.Fatalf("recovered /healthz = %d: %s", code, body)
	}
}

// TestQualityEndpoint pins /debug/quality: a live server with the
// monitor configured serves the latest snapshot and its history.
func TestQualityEndpoint(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 43, FormPages: 16})
	labels := make(map[string]string)
	var docs []cafc.Document
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		labels[u] = string(c.Labels[u])
	}
	ls := &liveServer{}
	live, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{
		K: 3, Seed: 1, BatchSize: 4, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish,
		Quality:   &cafc.QualityConfig{Labels: labels},
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	defer live.Close()
	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	for _, d := range docs {
		body, _ := json.Marshal(ingestRequest{URL: d.URL, HTML: d.HTML})
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e := live.Epoch(); e != nil && e.Corpus.Len() == len(docs) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/debug/quality")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/quality = %d: %s", resp.StatusCode, body)
	}
	var payload struct {
		Latest  cafc.QualitySnapshot   `json:"latest"`
		History []cafc.QualitySnapshot `json:"history"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("decode /debug/quality: %v: %s", err, body)
	}
	if payload.Latest.Pages != len(docs) || payload.Latest.Epoch == 0 {
		t.Fatalf("latest snapshot = %+v, want %d pages", payload.Latest, len(docs))
	}
	if payload.Latest.Labeled != len(docs) {
		t.Fatalf("labels did not flow through: labeled=%d", payload.Latest.Labeled)
	}
	if len(payload.History) == 0 {
		t.Fatal("empty quality history after ingest")
	}

	// Without a monitor the endpoint 404s instead of serving nothing.
	bare := &liveServer{}
	bareLive, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{K: 2, OnPublish: bare.onPublish})
	if err != nil {
		t.Fatal(err)
	}
	bare.live = bareLive
	defer bareLive.Close()
	ts2 := httptest.NewServer(bare.mux())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/debug/quality")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/quality without monitor = %d, want 404", resp2.StatusCode)
	}
}
