package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cafc"
	"cafc/internal/webgen"
)

// TestServeWhileIngest is the serve-while-ingest acceptance pin, run
// under -race in check.sh: readers hammer the directory UI, /classify
// and /status while a writer streams documents through POST /ingest.
// Every query must succeed (the epoch swap is atomic — there is no
// half-built window), and the observed epoch sequence must be
// monotonically non-decreasing.
func TestServeWhileIngest(t *testing.T) {
	c := webgen.Generate(webgen.Config{Seed: 31, FormPages: 60})
	var docs []cafc.Document
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
	}
	genesis := docs[:20]
	corpus, err := cafc.NewCorpus(genesis)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)

	ls := &liveServer{}
	live, err := cafc.NewLive(corpus, genesis, cl, cafc.LiveConfig{
		K: 4, Seed: 1, BatchSize: 4, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	defer live.Close()

	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	// Readiness: genesis was published, so /healthz must be green.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d before ingest", resp.StatusCode)
	}

	var (
		failed  atomic.Int64
		queries atomic.Int64
		done    = make(chan struct{})
		wg      sync.WaitGroup
	)
	paths := []string{"/", "/search?q=title", "/status", "/healthz"}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lastEpoch int64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := paths[(i+id)%len(paths)]
				resp, err := ts.Client().Get(ts.URL + p)
				if err != nil {
					failed.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				queries.Add(1)
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					t.Errorf("GET %s = %d: %s", p, resp.StatusCode, body)
					return
				}
				if p == "/status" {
					var st cafc.LiveStatus
					if err := json.Unmarshal(body, &st); err != nil {
						failed.Add(1)
						t.Errorf("status decode: %v", err)
						return
					}
					if st.Epoch < lastEpoch {
						failed.Add(1)
						t.Errorf("epoch went backwards: %d after %d", st.Epoch, lastEpoch)
						return
					}
					lastEpoch = st.Epoch
				}
			}
		}(r)
	}
	// One classify reader exercising the per-epoch classifier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			body, _ := json.Marshal(ingestRequest{URL: docs[i%20].URL, HTML: docs[i%20].HTML})
			resp, err := ts.Client().Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				failed.Add(1)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			queries.Add(1)
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				t.Errorf("POST /classify = %d", resp.StatusCode)
				return
			}
		}
	}()

	// The writer: stream the remaining 40 documents one POST at a time.
	for _, d := range docs[20:] {
		body, _ := json.Marshal(ingestRequest{URL: d.URL, HTML: d.HTML})
		for {
			resp, err := ts.Client().Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				time.Sleep(time.Millisecond) // backpressure: retry
				continue
			}
			t.Fatalf("POST /ingest = %d", resp.StatusCode)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e := live.Epoch(); e != nil && e.Corpus.Len() == len(docs) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d queries failed during ingest", failed.Load(), queries.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no reader queries ran — test is vacuous")
	}
	e := live.Epoch()
	if e.Corpus.Len() != len(docs) {
		t.Fatalf("final corpus %d pages, want %d", e.Corpus.Len(), len(docs))
	}
	// The UI swapped to the final epoch: the front page lists every
	// cluster of the latest clustering.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(page, []byte(fmt.Sprintf("%d databases", len(docs)))) &&
		!bytes.Contains(page, []byte("cluster")) {
		t.Errorf("front page looks stale: %.200s", page)
	}
}

// TestColdHealthz pins readiness gating: a cold live server reports 503
// everywhere until the first epoch is founded by ingest.
func TestColdHealthz(t *testing.T) {
	ls := &liveServer{}
	live, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{
		K: 2, BatchSize: 4, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish,
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	defer live.Close()
	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	for _, p := range []string{"/healthz", "/"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("cold GET %s = %d, want 503", p, resp.StatusCode)
		}
	}

	c := webgen.Generate(webgen.Config{Seed: 37, FormPages: 8})
	var payload []ingestRequest
	for _, u := range c.FormPages {
		payload = append(payload, ingestRequest{URL: u, HTML: c.ByURL[u].HTML})
	}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /ingest = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return // founded: ready
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("healthz never turned ready after founding ingest: %+v", live.Status())
}
