package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"cafc/internal/obs"
)

// fakeReplica is a togglable backend: it records which paths it served
// and answers /healthz according to its health switch. Tests drive
// router.check() directly, so failover never sleeps.
type fakeReplica struct {
	ts      *httptest.Server
	healthy atomic.Bool
	serves  atomic.Int64
	ingests atomic.Int64
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.healthy.Store(true)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			if !f.healthy.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			io.WriteString(w, "ok")
		case "/ingest":
			f.ingests.Add(1)
			w.WriteHeader(http.StatusAccepted)
			io.WriteString(w, name)
		default:
			f.serves.Add(1)
			io.WriteString(w, name)
		}
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// TestRouterSplitsReadsAndWrites pins the fan-out contract: POST
// /ingest goes to the leader and only the leader; reads round-robin
// across every replica in the pool.
func TestRouterSplitsReadsAndWrites(t *testing.T) {
	leader := newFakeReplica(t, "leader")
	f1 := newFakeReplica(t, "f1")
	f2 := newFakeReplica(t, "f2")
	rt, err := newRouter(leader.ts.URL, []string{leader.ts.URL, f1.ts.URL, f2.ts.URL}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rt.check()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("routed ingest = %d, want 202", resp.StatusCode)
		}
	}
	if leader.ingests.Load() != 3 || f1.ingests.Load() != 0 || f2.ingests.Load() != 0 {
		t.Fatalf("ingests = leader %d / f1 %d / f2 %d, want all 3 on the leader",
			leader.ingests.Load(), f1.ingests.Load(), f2.ingests.Load())
	}

	for i := 0; i < 9; i++ {
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for _, r := range []*fakeReplica{leader, f1, f2} {
		if got := r.serves.Load(); got != 3 {
			t.Fatalf("round-robin uneven: %d/%d/%d reads", leader.serves.Load(), f1.serves.Load(), f2.serves.Load())
		}
	}
}

// TestRouterFailover pins health-based routing: a replica that goes
// unhealthy stops receiving reads after the next check(), and comes
// back after it recovers; with the whole pool down the router answers
// 503 itself.
func TestRouterFailover(t *testing.T) {
	f1 := newFakeReplica(t, "f1")
	f2 := newFakeReplica(t, "f2")
	rt, err := newRouter("", []string{f1.ts.URL, f2.ts.URL}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rt.check()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	read := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	f1.healthy.Store(false)
	rt.check()
	f2.serves.Store(0)
	for i := 0; i < 4; i++ {
		if code := read(); code != http.StatusOK {
			t.Fatalf("read with one replica down = %d", code)
		}
	}
	if f2.serves.Load() != 4 || f1.serves.Load() != 0 {
		t.Fatalf("unhealthy replica still served: f1 %d, f2 %d", f1.serves.Load(), f2.serves.Load())
	}

	// Whole pool down: the router itself degrades, with a JSON reason.
	f2.healthy.Store(false)
	rt.check()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "no-replica") {
		t.Fatalf("read with pool down = %d %q", resp.StatusCode, body)
	}

	// Router /healthz mirrors the pool state.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Role     string          `json:"role"`
		Healthy  int             `json:"healthy"`
		Replicas map[string]bool `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || view.Healthy != 0 || view.Role != "router" {
		t.Fatalf("router healthz with pool down = %d %+v", resp.StatusCode, view)
	}

	// Recovery: one replica heals, reads flow again.
	f1.healthy.Store(true)
	rt.check()
	if code := read(); code != http.StatusOK {
		t.Fatalf("read after recovery = %d", code)
	}
	if f1.serves.Load() == 0 {
		t.Fatal("healed replica got no reads")
	}
}

// TestRouterWritesRequireLeader pins the write side of failover: with
// the leader down (or never configured) POST /ingest is refused — a
// router must never redirect writes to a read replica.
func TestRouterWritesRequireLeader(t *testing.T) {
	leader := newFakeReplica(t, "leader")
	f1 := newFakeReplica(t, "f1")
	rt, err := newRouter(leader.ts.URL, []string{f1.ts.URL}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	leader.healthy.Store(false)
	rt.check()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "no-leader") {
		t.Fatalf("ingest with leader down = %d %q, want 503 no-leader", resp.StatusCode, body)
	}
	if f1.ingests.Load() != 0 {
		t.Fatal("write leaked to a read replica")
	}

	// Reads still work: read availability does not depend on the leader.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read with leader down = %d, want 200", resp.StatusCode)
	}

	// No leader configured at all.
	rt2, err := newRouter("", []string{f1.ts.URL}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rt2.check()
	rec := httptest.NewRecorder()
	rt2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader("{}")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest with no leader configured = %d, want 503", rec.Code)
	}
}
