// Command directoryd serves a clustered hidden-web database directory
// over HTTP: cluster browsing, ranked page search and database selection
// — the paper's Section 6 "query-based interface" for exploring CAFC's
// clusters.
//
// Usage:
//
//	directoryd -in corpus.json.gz -addr :8080
//
// Endpoints: /  /cluster?id=N  /search?q=...  /select?q=...
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"cafc"
	"cafc/internal/dataset"
	"cafc/internal/directory"
	"cafc/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("directoryd: ")
	var (
		in   = flag.String("in", "corpus.json.gz", "input dataset")
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
		k    = flag.Int("k", 8, "number of clusters")
		seed = flag.Int64("seed", 1, "clustering seed")
	)
	flag.Parse()

	d, err := dataset.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	c := d.Corpus()
	var docs []cafc.Document
	html := make(map[string]string, len(c.FormPages))
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		html[u] = c.ByURL[u].HTML
	}
	corpus, err := cafc.NewCorpus(docs, cafc.Options{SkipNonSearchable: true})
	if err != nil {
		log.Fatal(err)
	}
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, *seed)
	cl := corpus.ClusterCH(*k, svc.Backlinks, c.RootOf, *seed)

	labels := make([]string, len(cl.Clusters))
	for i, terms := range cl.TopTerms {
		labels[i] = strings.Join(terms, " ")
	}
	srv := directory.Build(cl.Clusters, labels, html)
	fmt.Printf("serving %d databases in %d clusters on http://%s/\n", corpus.Len(), *k, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
