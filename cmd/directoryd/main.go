// Command directoryd serves a clustered hidden-web database directory
// over HTTP: cluster browsing, ranked page search and database selection
// — the paper's Section 6 "query-based interface" for exploring CAFC's
// clusters.
//
// Usage:
//
//	directoryd -in corpus.json.gz -addr :8080
//	directoryd -in corpus.json.gz -metrics   # adds /metrics, /debug/*
//	directoryd -live -in corpus.json.gz -data ./state   # streaming mode
//	directoryd -live -in "" -data ./state               # cold start
//
// Replication (see DESIGN.md "Replication & topology"):
//
//	directoryd -role leader -in "" -data ./lead              # live + /repl/*
//	directoryd -role follower -leader http://host:8080 -data ./foll
//	directoryd -role router -leader http://lead:8080 -replicas http://lead:8080,http://foll:8081
//
// A leader is a live directory that additionally streams its WAL at
// /repl/wal and its snapshot at /repl/snapshot. A follower bootstraps
// from those, tails the WAL with backoff, serves read-only /classify
// and browse traffic, forwards POST /ingest to the leader, and degrades
// /healthz once replication lag exceeds -max-lag. A router is
// stateless: it health-checks the replicas, fans reads across the
// healthy ones and sends writes to the leader.
//
// Endpoints: /  /cluster?id=N  /search?q=...  /select?q=...  /healthz
// With -live: POST /ingest, GET /status, POST /classify, GET
// /debug/quality (online quality snapshots); the directory rebuilds and
// hot-swaps on every published model epoch, and /healthz reports 503
// while cold or degraded (saturated ingest queue, open circuit breaker).
// With -metrics: /metrics (Prometheus text), /debug/vars (JSON),
// /debug/trace (startup spans), /debug/pprof/*; -slo-classify-ms and
// -slo-ingest-ms set the latency objectives behind the per-endpoint
// error-budget burn gauges, and -reqlog adds structured JSON request
// logs carrying trace ids.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cafc"
	"cafc/internal/crawler"
	"cafc/internal/dataset"
	"cafc/internal/directory"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("directoryd: ")
	var (
		in      = flag.String("in", "corpus.json.gz", "input dataset")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		k       = flag.Int("k", 8, "number of clusters")
		seed    = flag.Int64("seed", 1, "clustering seed")
		metrics = flag.Bool("metrics", false, "expose /metrics, /debug/vars, /debug/trace and /debug/pprof")
		retries = flag.Int("retries", 3, "backlink query attempts, backoff between them (0 disables the resilience wrapper)")
		budget  = flag.Int("backlink-budget", 0, "total backlink query budget, retries included (0 = unlimited)")
		// Chaos knob for the check.sh smoke: the in-process backlink
		// service dies permanently after N answered queries, so startup
		// exercises the breaker-trip + degraded-hub path end to end.
		outageAfter = flag.Int("backlink-outage-after", -1, "kill the backlink service after N queries (-1 = never; testing aid)")

		// Live-mode flags (see runLive).
		live          = flag.Bool("live", false, "streaming mode: POST /ingest grows the directory while it serves")
		data          = flag.String("data", "", "durable state dir for -live (WAL + snapshots); recovery wins over -in")
		// Replication flags (see follower.go / router.go).
		role           = flag.String("role", "", "replication role: leader | follower | router (empty = standalone)")
		leader         = flag.String("leader", "", "leader base URL (follower: replication source + write forwarding; router: write target)")
		replicas       = flag.String("replicas", "", "comma-separated replica base URLs the router fans reads across")
		maxLag         = flag.Int64("max-lag", 64, "follower staleness threshold: /healthz degrades once replication lag exceeds this many epochs")
		replPoll       = flag.Duration("repl-poll", 200*time.Millisecond, "follower replication poll interval")
		healthInterval = flag.Duration("health-interval", time.Second, "router replica health-check interval")
		batch         = flag.Int("batch", 0, "live ingest batch size (0 = default)")
		queue         = flag.Int("queue", 0, "live ingest queue bound (0 = default)")
		flush         = flag.Duration("flush", 0, "live partial-batch flush interval (0 = default)")
		drift         = flag.Float64("drift", 0, "reassignment fraction that triggers a full re-cluster (0 = default, >=1 disables)")
		snapshotEvery = flag.Int("snapshot-every", 0, "checkpoint a snapshot every N WAL records (0 = only on drain)")
		ingestWorkers = flag.Int("ingest-workers", 0, "parse/embed shard count per ingest batch (0 = one per CPU, 1 = serial; epochs are identical for every value)")
		groupCommit   = flag.Int("group-commit", 0, "batch up to N WAL records per fsync (0 = fsync per record; leaders only, a crash loses at most the unacknowledged buffer)")
		commitWindow  = flag.Duration("commit-window", 0, "max time a buffered WAL record waits for its group fsync (0 = flush interval)")
		sloClassifyMS = flag.Float64("slo-classify-ms", 50, "classify latency objective in ms (burn gauges need -metrics)")
		sloIngestMS   = flag.Float64("slo-ingest-ms", 20, "ingest latency objective in ms (burn gauges need -metrics)")
		reqlog        = flag.Bool("reqlog", false, "structured JSON request logs on stderr (live mode)")
	)
	flag.Parse()

	// Observability: the registry collects model/clustering telemetry
	// during startup and HTTP telemetry while serving; the tracer records
	// the startup phases into a ring buffer (served at /debug/trace) and
	// the log.
	var (
		reg    *obs.Registry
		ring   *obs.RingSink
		tracer *obs.Tracer
	)
	ctx := context.Background()
	if *metrics {
		reg = obs.NewRegistry()
		ring = obs.NewRingSink(256)
		tracer = obs.NewTracer(ring, obs.LogSink{Logger: log.Default()})
		ctx = obs.WithTracer(ctx, tracer)
	}

	switch *role {
	case "", "leader", "follower", "router":
	default:
		log.Fatalf("unknown -role %q (leader | follower | router)", *role)
	}

	lp := liveParams{
		in:            *in,
		addr:          *addr,
		data:          *data,
		k:             *k,
		seed:          *seed,
		metrics:       *metrics,
		retries:       *retries,
		budget:        *budget,
		batch:         *batch,
		queue:         *queue,
		flush:         *flush,
		drift:         *drift,
		snapshotEvery: *snapshotEvery,
		ingestWorkers: *ingestWorkers,
		groupCommit:   *groupCommit,
		commitWindow:  *commitWindow,
		sloClassifyMS: *sloClassifyMS,
		sloIngestMS:   *sloIngestMS,
		reqlog:        *reqlog,
		role:          *role,
	}

	if *role == "router" {
		sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		err := runRouter(routerParams{
			addr:     *addr,
			leader:   *leader,
			replicas: splitList(*replicas),
			interval: *healthInterval,
			metrics:  *metrics,
			reqlog:   *reqlog,
		}, reg, ring, tracer, sigCtx)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *role == "follower" {
		if *leader == "" || *data == "" {
			log.Fatal("-role follower requires -leader and -data")
		}
		sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		err := runFollower(followerParams{
			liveParams: lp,
			leader:     strings.TrimRight(*leader, "/"),
			maxLag:     *maxLag,
			poll:       *replPoll,
		}, reg, ring, tracer, sigCtx)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	if *live || *role == "leader" {
		if *role == "leader" && *data == "" {
			log.Fatal("-role leader requires -data (followers bootstrap from its WAL)")
		}
		sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := runLive(lp, reg, ring, tracer, sigCtx); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, span := obs.Start(ctx, "startup")

	_, loadSpan := obs.Start(ctx, "load")
	d, err := dataset.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	c := d.Corpus()
	var docs []cafc.Document
	html := make(map[string]string, len(c.FormPages))
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		html[u] = c.ByURL[u].HTML
	}
	opts := cafc.Options{SkipNonSearchable: true, Metrics: reg}
	if *retries > 0 {
		opts.Retry = &cafc.Retry{MaxAttempts: *retries, Budget: *budget, Seed: *seed}
	}
	corpus, err := cafc.NewCorpus(docs, opts)
	if err != nil {
		log.Fatal(err)
	}
	loadSpan.SetAttr(obs.Int("form_pages", corpus.Len()))
	loadSpan.End()

	_, clusterSpan := obs.Start(ctx, "cluster")
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, *seed)
	svc.Metrics = reg
	backlinks := svc.Backlinks
	if *outageAfter >= 0 {
		var calls int
		inner := backlinks
		backlinks = func(u string) ([]string, error) {
			if calls++; calls > *outageAfter {
				svc.SetUnavailable(true)
			}
			return inner(u)
		}
	}
	cl := corpus.ClusterCH(*k, backlinks, c.RootOf, *seed)
	if cl.Degraded != "" {
		log.Printf("clustering degraded: %s (hub evidence partial, shortfall seeded randomly)", cl.Degraded)
	}
	clusterSpan.SetAttr(obs.Int("k", *k))
	clusterSpan.End()

	if *metrics {
		probeFetchHealth(ctx, c, reg)
	}

	labels := make([]string, len(cl.Clusters))
	for i, terms := range cl.TopTerms {
		labels[i] = strings.Join(terms, " ")
	}
	srv := directory.Build(cl.Clusters, labels, html)

	var handler http.Handler = srv.Handler()
	if *metrics {
		mux := obs.DebugMux(reg, ring, true)
		mux.Handle("/", obs.InstrumentHandler(reg, handler))
		handler = mux
	}
	// Static mode is ready as soon as it serves (the model was built
	// before the listener opened); live mode gates /healthz on epoch >= 1.
	root := http.NewServeMux()
	root.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	root.Handle("/", handler)
	handler = root

	// Listen before constructing the server so -addr :0 resolves to a
	// real port we can print (scripts parse this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	span.End()
	fmt.Printf("serving %d databases in %d clusters on http://%s/\n", corpus.Len(), *k, ln.Addr())
	if *metrics {
		fmt.Printf("metrics on http://%s/metrics, profiles on http://%s/debug/pprof/\n", ln.Addr(), ln.Addr())
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// Generous write timeout: /debug/pprof/profile streams for 30s by
		// default and /debug/pprof/trace can run longer.
		WriteTimeout: 120 * time.Second,
		IdleTimeout:  60 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-sigCtx.Done():
	}
	stop()
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
}

// splitList parses a comma-separated URL list, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(strings.TrimRight(f, "/")); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// probeFetchHealth exercises the crawler's fetch path over real loopback
// HTTP against the loaded corpus — one fetch per form page — so the
// fetch-latency and status metrics are populated from first scrape, the
// way a periodic health probe would in a long-running deployment.
func probeFetchHealth(ctx context.Context, c *webgen.Corpus, reg *obs.Registry) {
	if len(c.FormPages) == 0 {
		return
	}
	_, span := obs.Start(ctx, "fetch_probe")
	defer span.End()
	ts, client := crawler.ServeCorpus(c)
	defer ts.Close()
	cr := &crawler.Crawler{
		Fetcher: &crawler.RetryFetcher{
			Fetcher: &crawler.HTTPFetcher{Client: client},
			Policy:  retry.Policy{Timeout: 5 * time.Second},
			Breaker: retry.NewBreaker(5, 30*time.Second, nil, reg, "fetch"),
			Metrics: reg,
		},
		Config: crawler.Config{MaxPages: len(c.FormPages), MaxDepth: 1, Metrics: reg},
	}
	pages := cr.Crawl(c.FormPages)
	span.SetAttr(obs.Int("pages", len(pages)))
}
