package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cafc"
)

// newTestLiveServer builds a warm liveServer with search enabled over a
// generated genesis corpus.
func newTestLiveServer(t *testing.T) (*liveServer, func()) {
	t.Helper()
	docs := genCorpus(t, 61, 24)
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)
	ls := &liveServer{}
	live, err := cafc.NewLive(corpus, docs, cl, cafc.LiveConfig{
		K: 4, Seed: 1, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
		OnPublish: ls.onPublish, Search: &cafc.SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ls.live = live
	return ls, func() { live.Close() }
}

// TestSearchEndpoint pins the /search HTTP contract on a leader: ranked
// JSON hits with cluster labels, facets on broad queries, X-Cache
// MISS/HIT across a repeat, and 400s on bad parameters.
func TestSearchEndpoint(t *testing.T) {
	ls, stop := newTestLiveServer(t)
	defer stop()
	ts := httptest.NewServer(ls.mux())
	defer ts.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("X-Cache")
	}

	code, body, cache := get("/search?q=hotel+rooms&k=8")
	if code != http.StatusOK {
		t.Fatalf("search = %d: %s", code, body)
	}
	if cache != "MISS" {
		t.Fatalf("first query X-Cache = %q, want MISS", cache)
	}
	var res cafc.SearchResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body)
	}
	if res.Query != "hotel rooms" || res.Epoch != 1 || len(res.Hits) == 0 {
		t.Fatalf("result incomplete: %+v", res)
	}
	for i, h := range res.Hits {
		if h.URL == "" || h.Score <= 0 || h.Cluster < 0 || h.ClusterLabel == "" {
			t.Fatalf("hit %d incomplete: %+v", i, h)
		}
		if i > 0 && res.Hits[i-1].Score < h.Score {
			t.Fatalf("hits not ranked: %+v", res.Hits)
		}
	}

	code, body2, cache := get("/search?q=hotel+rooms&k=8")
	if code != http.StatusOK || cache != "HIT" {
		t.Fatalf("repeat query = %d X-Cache=%q, want 200 HIT", code, cache)
	}
	if body != body2 {
		t.Fatal("cached response differs from computed one")
	}

	if code, _, _ := get("/search"); code != http.StatusBadRequest {
		t.Fatalf("missing q = %d, want 400", code)
	}
	if code, _, _ := get("/search?q=hotel&k=junk"); code != http.StatusBadRequest {
		t.Fatalf("bad k = %d, want 400", code)
	}

	// A cold pipeline answers 503.
	cold := &liveServer{live: mustColdLiveSearch(t)}
	rec := httptest.NewRecorder()
	cold.handleSearch(rec, httptest.NewRequest(http.MethodGet, "/search?q=hotel", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold search = %d, want 503", rec.Code)
	}
}

func mustColdLiveSearch(t *testing.T) *cafc.Live {
	t.Helper()
	l, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{
		K: 4, Seed: 1, Search: &cafc.SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestFollowerSearchEndpoint pins that the follower mux routes /search
// to the local replicated index (not a forward to the leader).
func TestFollowerSearchEndpoint(t *testing.T) {
	fs, _, stop := newTestFollowerServer(t, "http://unreachable.example:1")
	defer stop()
	ts := httptest.NewServer(fs.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/search?q=hotel+rooms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower search = %d: %s", resp.StatusCode, body)
	}
	var res cafc.SearchResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatalf("follower search returned no hits: %+v", res)
	}
}
