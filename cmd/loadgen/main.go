// Command loadgen replays a seeded mixed classify/ingest/browse/search
// workload against a live directory and reports per-endpoint latency
// quantiles plus the final quality snapshot — the ops-side answer to
// "what does this directory do under load?".
//
// Usage:
//
//	loadgen -n 454 -seed 1 -qps 200 -ops 2000          # in-process
//	loadgen -target http://127.0.0.1:8080 -qps 100     # running directoryd
//	loadgen -target http://lead:8080,http://foll:8081  # leader + read replicas
//	loadgen -mix 60,20,10,10 -duration 2s -json out.json
//
// Search queries are drawn from a seeded pool sampled off the generated
// corpus's own page titles, so they reliably match the index.
//
// Without -target the driver builds an in-process directory from a
// generated corpus (genesis = first quarter) and drives it directly;
// with -target it drives a running directoryd over HTTP. The report is
// JSON on stdout, or to the -json file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"cafc"
	"cafc/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		target   = flag.String("target", "", "base URL(s) of running directoryds, comma-separated: first is the leader (writes), all are the read pool (empty = in-process directory)")
		n        = flag.Int("n", 454, "form pages in the generated workload corpus")
		seed     = flag.Int64("seed", 1, "workload seed (corpus, op sequence, classify draws)")
		k        = flag.Int("k", 8, "clusters for the in-process directory")
		qps      = flag.Float64("qps", 200, "offered rate, open-loop")
		ops      = flag.Int("ops", 1000, "total operations to issue")
		duration = flag.Duration("duration", 0, "stop issuing after this long even if -ops remain (0 = run all ops)")
		mix      = flag.String("mix", "", "classify,ingest,browse[,search] weights (default 70,20,10,0)")
		inflight = flag.Int("inflight", 0, "max concurrent classify/browse ops (0 = 64)")
		jsonOut  = flag.String("json", "", "write the report here instead of stdout")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Seed:        *seed,
		QPS:         *qps,
		Ops:         *ops,
		Duration:    *duration,
		Mix:         parseMix(*mix),
		MaxInFlight: *inflight,
	}
	fx := loadgen.NewFixture(*seed, *n)
	cfg.Queries = fx.Queries

	var (
		tgt  loadgen.Target
		live *cafc.Live
	)
	if *target != "" {
		var bases []string
		for _, t := range strings.Split(*target, ",") {
			if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
				bases = append(bases, t)
			}
		}
		if len(bases) == 1 {
			tgt = loadgen.HTTPTarget{Base: bases[0]}
		} else {
			// Replicated deployment: the first URL is the leader (the only
			// WAL owner, so the only write sink); every URL serves reads.
			mt := &loadgen.MultiTarget{Leader: loadgen.HTTPTarget{Base: bases[0]}}
			for _, b := range bases {
				mt.Readers = append(mt.Readers, loadgen.HTTPTarget{Base: b})
			}
			tgt = mt
		}
	} else {
		var err error
		live, err = startDirectory(fx, *k, *seed)
		if err != nil {
			log.Fatal(err)
		}
		defer live.Close()
		tgt = loadgen.LiveTarget{Live: live}
	}

	rep, err := loadgen.Run(context.Background(), cfg, tgt, fx.Genesis, fx.Pool)
	if err != nil {
		log.Fatal(err)
	}

	out := struct {
		loadgen.Report
		Quality *cafc.QualitySnapshot `json:"quality,omitempty"`
	}{Report: rep}
	if live != nil {
		if snap, ok := live.Quality(); ok {
			out.Quality = &snap
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d ops, %.0f/%.0f qps)\n", *jsonOut, rep.Ops, rep.AchievedQPS, rep.TargetQPS)
		return
	}
	os.Stdout.Write(buf)
}

// startDirectory founds the in-process directory the same way the
// ingest benchmark does: genesis corpus, seeded CAFC-C clustering, and
// the quality monitor attached with the generator's gold labels.
func startDirectory(fx loadgen.Fixture, k int, seed int64) (*cafc.Live, error) {
	corpus, err := cafc.NewCorpus(fx.Genesis)
	if err != nil {
		return nil, err
	}
	cl := corpus.ClusterC(k, seed)
	return cafc.NewLive(corpus, fx.Genesis, cl, cafc.LiveConfig{
		K: k, Seed: seed, BatchSize: 32, FlushInterval: time.Millisecond,
		Quality: &cafc.QualityConfig{Labels: fx.Labels},
		Search:  &cafc.SearchConfig{},
	})
}

// parseMix parses "70,20,10" or "60,20,10,10" into a Mix (empty =
// defaults; the fourth weight is the search fraction).
func parseMix(s string) loadgen.Mix {
	if s == "" {
		return loadgen.Mix{}
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 && len(parts) != 4 {
		log.Fatalf("-mix wants three or four comma-separated weights, got %q", s)
	}
	w := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			log.Fatalf("bad -mix weight %q", p)
		}
		w[i] = v
	}
	return loadgen.Mix{Classify: w[0], Ingest: w[1], Browse: w[2], Search: w[3]}
}
