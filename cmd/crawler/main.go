// Command crawler serves a generated corpus over local HTTP, crawls it
// starting from the directory and hub pages, filters the fetched pages
// down to searchable form pages, and writes the crawl result as a dataset
// ready for cmd/cafc.
//
// Usage:
//
//	crawler -in corpus.json.gz -o crawled.json.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"cafc/internal/crawler"
	"cafc/internal/dataset"
	"cafc/internal/obs"
	"cafc/internal/retry"
	"cafc/internal/webgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crawler: ")
	var (
		in       = flag.String("in", "corpus.json.gz", "input dataset to serve and crawl")
		out      = flag.String("o", "crawled.json.gz", "output dataset of crawled pages")
		maxPages = flag.Int("max", 0, "page budget (0 = default)")
		workers  = flag.Int("workers", 4, "concurrent fetchers")
		metrics  = flag.Bool("metrics", false, "dump crawl telemetry to stderr on exit")
		retries  = flag.Int("retries", 3, "fetch attempts per page, backoff between them (1 disables retrying)")
		timeout  = flag.Duration("fetch-timeout", 10*time.Second, "per-attempt fetch timeout")
		breakN   = flag.Int("breaker", 5, "consecutive fetch failures that trip the circuit breaker (0 disables)")
	)
	flag.Parse()

	d, err := dataset.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	c := d.Corpus()

	srv, client := crawler.ServeCorpus(c)
	defer srv.Close()

	var seeds []string
	for _, p := range c.Pages {
		if p.Kind == webgen.DirectoryPageKind || p.Kind == webgen.HubPageKind {
			seeds = append(seeds, p.URL)
		}
	}
	sort.Strings(seeds)
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var fetcher crawler.Fetcher = &crawler.HTTPFetcher{Client: client}
	if *retries > 1 || *breakN > 0 {
		var breaker *retry.Breaker
		if *breakN > 0 {
			breaker = retry.NewBreaker(*breakN, 30*time.Second, nil, reg, "fetch")
		}
		fetcher = &crawler.RetryFetcher{
			Fetcher: fetcher,
			Policy:  retry.Policy{MaxAttempts: *retries, Timeout: *timeout},
			Breaker: breaker,
			Metrics: reg,
		}
	}
	cr := &crawler.Crawler{
		Fetcher: fetcher,
		Config:  crawler.Config{MaxPages: *maxPages, Workers: *workers, Metrics: reg},
	}
	pages := cr.Crawl(seeds)
	formPages := crawler.FormPages(pages)
	fmt.Printf("crawled %d pages over HTTP, %d contain searchable forms\n", len(pages), len(formPages))
	if reg != nil {
		fmt.Fprintln(os.Stderr, "# crawl metrics")
		if err := reg.WritePrometheus(os.Stderr); err != nil {
			log.Print(err)
		}
	}

	// Re-assemble a dataset of the discovered form pages (carrying over
	// gold labels and site roots when the input corpus knows them).
	outDS := &dataset.Dataset{}
	for _, p := range formPages {
		rec := dataset.Record{URL: p.URL, HTML: p.HTML, Kind: "form"}
		if kp := c.ByURL[p.URL]; kp != nil {
			rec.Domain = string(kp.Domain)
			rec.Root = c.RootOf[p.URL]
		}
		outDS.Records = append(outDS.Records, rec)
	}
	// Hub and root pages are needed for backlink derivation downstream.
	for _, p := range c.Pages {
		switch p.Kind {
		case webgen.HubPageKind, webgen.DirectoryPageKind, webgen.RootPageKind:
			outDS.Records = append(outDS.Records, dataset.Record{
				URL: p.URL, HTML: p.HTML, Kind: p.Kind.String(), Domain: string(p.Domain),
			})
		}
	}
	if err := outDS.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", len(outDS.Records), *out)
}
