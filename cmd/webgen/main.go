// Command webgen generates a synthetic hidden-web corpus and writes it to
// disk as a gzipped JSON dataset.
//
// Usage:
//
//	webgen -n 454 -seed 2007 -o corpus.json.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cafc/internal/dataset"
	"cafc/internal/webgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webgen: ")
	var (
		n      = flag.Int("n", 454, "number of form pages to generate")
		seed   = flag.Int64("seed", 2007, "generator seed (equal seeds give identical corpora)")
		out    = flag.String("o", "corpus.json.gz", "output dataset path")
		hubs   = flag.Int("hubs", 0, "hub pages per domain (0 = default)")
		orphan = flag.Float64("orphan", 0, "fraction of form pages withheld from hubs (0 = default)")
		stats  = flag.Bool("stats", true, "print corpus statistics")
	)
	flag.Parse()

	c := webgen.Generate(webgen.Config{
		Seed:           *seed,
		FormPages:      *n,
		HubsPerDomain:  *hubs,
		OrphanFraction: *orphan,
	})
	d := dataset.FromCorpus(c)
	if err := d.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d pages (%d form pages) to %s\n", len(c.Pages), len(c.FormPages), *out)
	if *stats {
		fmt.Print(dataset.ComputeStats(c))
	}
	_ = os.Stdout.Sync()
}
