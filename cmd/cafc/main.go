// Command cafc clusters the form pages of a dataset with CAFC-C, CAFC-CH
// or the HAC baseline and prints the resulting online-database directory.
// When the dataset carries gold labels, entropy and F-measure are
// reported as well.
//
// Usage:
//
//	cafc -in corpus.json.gz -algo ch -k 8
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"cafc"
	"cafc/internal/dataset"
	"cafc/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafc: ")
	var (
		in       = flag.String("in", "corpus.json.gz", "input dataset")
		algo     = flag.String("algo", "ch", "clustering algorithm: c | ch | hac")
		k        = flag.Int("k", 8, "number of clusters")
		minCard  = flag.Int("mincard", 8, "minimum hub-cluster cardinality (ch only)")
		seed     = flag.Int64("seed", 1, "random seed")
		features = flag.String("features", "both", "feature spaces: fc | pc | both")
		maxShow  = flag.Int("show", 6, "member URLs to print per cluster")
	)
	flag.Parse()

	d, err := dataset.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	c := d.Corpus()
	var docs []cafc.Document
	labels := make(map[string]string)
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		if lbl := string(c.Labels[u]); lbl != "" {
			labels[u] = lbl
		}
	}
	var feat cafc.Features
	switch *features {
	case "fc":
		feat = cafc.FCOnly
	case "pc":
		feat = cafc.PCOnly
	case "both":
		feat = cafc.FCPC
	default:
		log.Fatalf("unknown -features %q", *features)
	}
	fmt.Printf("# cafc algo=%s k=%d mincard=%d seed=%d features=%s workers=%d engine=compiled\n",
		*algo, *k, *minCard, *seed, *features, runtime.GOMAXPROCS(0))
	corpus, err := cafc.NewCorpus(docs, cafc.Options{Features: feat, SkipNonSearchable: true})
	if err != nil {
		log.Fatal(err)
	}
	if len(corpus.Skipped) > 0 {
		fmt.Printf("skipped %d pages without searchable forms\n", len(corpus.Skipped))
	}

	var cl *cafc.Clustering
	switch *algo {
	case "c":
		cl = corpus.ClusterC(*k, *seed)
	case "hac":
		cl = corpus.ClusterHAC(*k)
	case "ch":
		g := webgraph.FromCorpus(c)
		svc := webgraph.NewBacklinkService(g, 100, 0, *seed)
		cl = corpus.ClusterCHMinCard(*k, svc.Backlinks, c.RootOf, *minCard, *seed)
	default:
		log.Fatalf("unknown -algo %q", *algo)
	}

	for i, members := range cl.Clusters {
		fmt.Printf("cluster %d (%d pages) — top terms: %v\n", i, len(members), cl.TopTerms[i])
		for j, u := range members {
			if j >= *maxShow {
				fmt.Printf("  ... and %d more\n", len(members)-*maxShow)
				break
			}
			fmt.Printf("  %s\n", u)
		}
	}
	if len(labels) > 0 {
		e, f := cl.Quality(labels)
		fmt.Printf("\nquality vs gold labels: entropy=%.3f F-measure=%.3f\n", e, f)
	}
}
