package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"cafc"
	"cafc/internal/loadgen"
	"cafc/internal/obs"
	"cafc/internal/text"
	"cafc/internal/webgen"
)

// searchLatency is one pass's latency summary, milliseconds, measured
// over the full seeded query pool.
type searchLatency struct {
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// searchQuality is the bit-reproducible core of the search benchmark:
// every field is a pure function of (seed, n) — retrieval coverage,
// facet purity against the generator's gold domain labels, and how
// often facet labels are drawn from the majority domain's own
// vocabulary.
type searchQuality struct {
	Queries        int      `json:"queries"`
	AvgHits        float64  `json:"avg_hits"`
	AvgFacets      float64  `json:"avg_facets"`
	FacetPurity    float64  `json:"facet_purity"`
	LabelAlignment float64  `json:"label_alignment"`
	ClusterLabels  []string `json:"cluster_labels"`
	ByteIdentical  bool     `json:"byte_identical"`
}

// searchResult is the BENCH_search.json schema: one seeded run of the
// search path over the full generated corpus — cold-index throughput,
// cached throughput, the cache hit ratio, and the quality block.
type searchResult struct {
	Seed      int64         `json:"seed"`
	FormPages int           `json:"form_pages"`
	K         int           `json:"k"`
	TopK      int           `json:"top_k"`
	Cold      searchLatency `json:"cold"`
	Cached    searchLatency `json:"cached"`
	HitRatio  float64       `json:"hit_ratio"`
	Quality   searchQuality `json:"quality"`
}

const searchTopK = 10

// searchBench builds a search-enabled directory over the complete
// generated corpus, replays the fixture's seeded query pool twice —
// once against the cold per-epoch cache, once warm — and scores the
// facets against webgen's gold labels. A second directory built from
// scratch at the same seed must answer every query with byte-identical
// JSON: the same contract the leader/follower test pins, checked here
// end to end.
func searchBench(n int, seed int64, reg *obs.Registry) (searchResult, error) {
	fx := loadgen.NewFixture(seed, n)
	all := append(append([]cafc.Document(nil), fx.Genesis...), fx.Pool...)
	if len(fx.Queries) == 0 {
		return searchResult{}, fmt.Errorf("fixture generated no queries")
	}
	k := len(webgen.Domains)

	live, err := startSearchDirectory(all, k, seed, reg)
	if err != nil {
		return searchResult{}, err
	}
	defer live.Close()

	// Cold pass: every query is a first sight for this epoch's cache.
	coldLat := make([]float64, 0, len(fx.Queries))
	coldBytes := make([][]byte, 0, len(fx.Queries))
	results := make([]*cafc.SearchResult, 0, len(fx.Queries))
	hits := 0
	coldStart := time.Now()
	for _, q := range fx.Queries {
		t0 := time.Now()
		res, cached, err := live.Search(q, searchTopK)
		coldLat = append(coldLat, time.Since(t0).Seconds())
		if err != nil {
			return searchResult{}, err
		}
		if cached {
			return searchResult{}, fmt.Errorf("cold pass hit the cache on %q", q)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			return searchResult{}, err
		}
		coldBytes = append(coldBytes, buf)
		results = append(results, res)
	}
	coldElapsed := time.Since(coldStart)

	// Cached pass: the same queries against the same epoch must all hit.
	cachedLat := make([]float64, 0, len(fx.Queries))
	cachedStart := time.Now()
	for _, q := range fx.Queries {
		t0 := time.Now()
		_, cached, err := live.Search(q, searchTopK)
		cachedLat = append(cachedLat, time.Since(t0).Seconds())
		if err != nil {
			return searchResult{}, err
		}
		if cached {
			hits++
		}
	}
	cachedElapsed := time.Since(cachedStart)

	// Byte-identity contract: a fresh directory at the same seed answers
	// every query with the exact bytes of the first.
	identical := true
	live2, err := startSearchDirectory(all, k, seed, nil)
	if err != nil {
		return searchResult{}, err
	}
	for i, q := range fx.Queries {
		res, _, err := live2.Search(q, searchTopK)
		if err != nil {
			live2.Close()
			return searchResult{}, err
		}
		buf, err := json.Marshal(res)
		if err != nil {
			live2.Close()
			return searchResult{}, err
		}
		if !bytes.Equal(buf, coldBytes[i]) {
			identical = false
			break
		}
	}
	live2.Close()

	return searchResult{
		Seed:      seed,
		FormPages: n,
		K:         k,
		TopK:      searchTopK,
		Cold:      summarizeSearch(coldLat, coldElapsed),
		Cached:    summarizeSearch(cachedLat, cachedElapsed),
		HitRatio:  float64(hits) / float64(len(fx.Queries)),
		Quality:   scoreSearch(results, fx.Labels, live.SearchLabels(), identical),
	}, nil
}

// startSearchDirectory founds a search-enabled directory over docs with
// no pending ingest — the whole corpus lands in the genesis epoch, so
// the index (and every query answer) is a pure function of (docs, seed).
func startSearchDirectory(docs []cafc.Document, k int, seed int64, reg *obs.Registry) (*cafc.Live, error) {
	corpus, err := cafc.NewCorpus(docs, cafc.Options{Metrics: reg})
	if err != nil {
		return nil, err
	}
	cl := corpus.ClusterC(k, seed)
	return cafc.NewLive(corpus, docs, cl, cafc.LiveConfig{
		K: k, Seed: seed, BatchSize: 32, FlushInterval: time.Hour,
		Search: &cafc.SearchConfig{},
	}, cafc.Options{Metrics: reg})
}

// summarizeSearch reduces one pass's raw latencies to the report row.
func summarizeSearch(lat []float64, elapsed time.Duration) searchLatency {
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	return searchLatency{
		Queries: len(lat),
		QPS:     float64(len(lat)) / elapsed.Seconds(),
		P50MS:   nearestRank(sorted, 0.50) * 1000,
		P95MS:   nearestRank(sorted, 0.95) * 1000,
		P99MS:   nearestRank(sorted, 0.99) * 1000,
	}
}

// nearestRank is the nearest-rank quantile of an ascending-sorted
// sample — the same definition loadgen reports.
func nearestRank(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scoreSearch computes the quality block from the cold-pass results.
//
// Facet purity: each facet's member pages are looked up in the
// generator's gold labels; the facet's purity is the majority-domain
// share, and the reported number is the hit-weighted average over all
// facets of all queries. Label alignment: a facet's label "aligns" when
// at least one of its label terms stems into the majority domain's own
// generator vocabulary — i.e. the automatic labels speak the domain's
// language rather than boilerplate.
func scoreSearch(results []*cafc.SearchResult, gold map[string]string, clusterLabels []string, identical bool) searchQuality {
	var totalHits, totalFacets int
	var pure, sized float64
	aligned, facets := 0, 0
	for _, res := range results {
		totalHits += len(res.Hits)
		totalFacets += len(res.Facets)
		for _, f := range res.Facets {
			counts := make(map[string]int)
			for _, u := range f.URLs {
				counts[gold[u]]++
			}
			major, best := "", 0
			for d, c := range counts {
				if c > best || (c == best && d < major) {
					major, best = d, c
				}
			}
			pure += float64(best)
			sized += float64(len(f.URLs))
			facets++
			vocab := webgen.Vocabulary(webgen.Domain(major))
			for _, term := range f.Terms {
				ok := false
				for _, st := range text.Terms(term) {
					if vocab[st] {
						ok = true
						break
					}
				}
				if ok {
					aligned++
					break
				}
			}
		}
	}
	q := searchQuality{
		Queries:       len(results),
		ClusterLabels: clusterLabels,
		ByteIdentical: identical,
	}
	if len(results) > 0 {
		q.AvgHits = float64(totalHits) / float64(len(results))
		q.AvgFacets = float64(totalFacets) / float64(len(results))
	}
	if sized > 0 {
		q.FacetPurity = pure / sized
	}
	if facets > 0 {
		q.LabelAlignment = float64(aligned) / float64(facets)
	}
	return q
}

// writeSearchJSON renders the result table and writes the JSON report.
func writeSearchJSON(r searchResult, path string) error {
	fmt.Printf("%10s %10s %10s %10s %10s\n", "pass", "qps", "p50ms", "p95ms", "p99ms")
	for _, row := range []struct {
		name string
		lat  searchLatency
	}{{"cold", r.Cold}, {"cached", r.Cached}} {
		fmt.Printf("%10s %10.0f %10.3f %10.3f %10.3f\n",
			row.name, row.lat.QPS, row.lat.P50MS, row.lat.P95MS, row.lat.P99MS)
	}
	fmt.Printf("# hit ratio %.3f; avg hits %.1f facets %.1f; purity %.3f alignment %.3f; byte-identical %v\n",
		r.HitRatio, r.Quality.AvgHits, r.Quality.AvgFacets,
		r.Quality.FacetPurity, r.Quality.LabelAlignment, r.Quality.ByteIdentical)
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
