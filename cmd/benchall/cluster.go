package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"

	"cafc"
	"cafc/internal/loadgen"
	"cafc/internal/obs"
	"cafc/internal/repl"
	"cafc/internal/webgen"
)

// clusterRow is one replica-count sample: the isolated classify
// throughput of each replica and their aggregate.
type clusterRow struct {
	Replicas      int       `json:"replicas"`
	PerReplicaQPS []float64 `json:"per_replica_qps"`
	AggregateQPS  float64   `json:"aggregate_qps"`
	SpeedupVs1    float64   `json:"speedup_vs_1"`
}

// clusterResult is the BENCH_cluster.json schema: classify capacity of
// a replicated directory at 1, 2 and 4 replicas, plus the invariants
// the numbers rest on (every follower bit-converged to the leader's
// epoch before measurement, lag 0).
type clusterResult struct {
	Seed        int64        `json:"seed"`
	FormPages   int          `json:"form_pages"`
	K           int          `json:"k"`
	HostCores   int          `json:"host_cores"`
	ClassifyOps int          `json:"classify_ops_per_replica"`
	LeaderEpoch int64        `json:"leader_epoch"`
	FinalLag    int64        `json:"final_replication_lag_epochs"`
	Method      string       `json:"method"`
	Rows        []clusterRow `json:"rows"`
}

const clusterMethod = "Each replica's classify QPS is measured in isolation (single-threaded, " +
	"in-process, against its own replicated epoch) and the aggregate is their sum. Read replicas " +
	"share no state — a follower serves classify from its own epoch-versioned model copy — so " +
	"summed isolated throughput is the capacity a router fans into when replicas sit on separate " +
	"cores/hosts. On a host with fewer cores than replicas, concurrent measurement would only " +
	"time-slice one core and measure the scheduler, not the architecture."

// clusterBench grows a leader directory from the seeded fixture,
// bootstraps followers over the replication protocol until they are
// bit-identical to the leader, and measures the classify capacity of
// 1-, 2- and 4-replica read pools.
func clusterBench(n int, seed int64, reg *obs.Registry) (clusterResult, error) {
	fx := loadgen.NewFixture(seed, n)
	k := len(webgen.Domains)
	ldir, err := os.MkdirTemp("", "benchcluster-leader-*")
	if err != nil {
		return clusterResult{}, err
	}
	defer os.RemoveAll(ldir)
	// Cold start: every document flows through the WAL-logged pipeline,
	// so the WAL alone is the leader's complete history and a follower's
	// replay is the leader's exact compute path (the bit-identity the
	// per-follower checks below assert).
	leader, err := cafc.NewLive(nil, nil, nil, cafc.LiveConfig{
		K: k, Seed: seed, BatchSize: 32, FlushInterval: time.Millisecond,
		Dir: ldir,
	}, cafc.Options{Metrics: reg})
	if err != nil {
		return clusterResult{}, err
	}
	defer leader.Close()
	for _, d := range append(append([]cafc.Document(nil), fx.Genesis...), fx.Pool...) {
		if err := (loadgen.LiveTarget{Live: leader}).Ingest(d); err != nil {
			return clusterResult{}, err
		}
	}
	total := len(fx.Genesis) + len(fx.Pool)
	if err := waitFor(leader, func(e *cafc.LiveEpoch) bool { return e.Corpus.Len() == total }); err != nil {
		return clusterResult{}, err
	}
	if err := leader.ForceRebuild(); err != nil {
		return clusterResult{}, err
	}
	if err := waitFor(leader, func(e *cafc.LiveEpoch) bool { return e.Rebuilt && e.Corpus.Len() == total }); err != nil {
		return clusterResult{}, err
	}

	// Build the largest pool once: the leader plus three followers, each
	// bootstrapped from the leader's state dir and tailed to parity.
	replicas := []*cafc.Live{leader}
	var finalLag int64
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		fdir, err := os.MkdirTemp("", "benchcluster-follower-*")
		if err != nil {
			return clusterResult{}, err
		}
		defer os.RemoveAll(fdir)
		if err := repl.Bootstrap(ctx, repl.DirSource{Dir: ldir}, fdir); err != nil {
			return clusterResult{}, err
		}
		f, err := cafc.RecoverFollower(cafc.LiveConfig{K: k, Seed: seed, Dir: fdir})
		if err != nil {
			return clusterResult{}, err
		}
		defer f.Close()
		tail := &repl.Tailer{Source: repl.DirSource{Dir: ldir}, Target: f}
		if err := tail.Sync(ctx); err != nil {
			return clusterResult{}, err
		}
		if lag := tail.Lag(); lag != 0 {
			return clusterResult{}, fmt.Errorf("follower %d still lags %d epochs after sync", i, lag)
		}
		if f.AppliedEpoch() != leader.Status().Epoch {
			return clusterResult{}, fmt.Errorf("follower %d at epoch %d, leader at %d", i, f.AppliedEpoch(), leader.Status().Epoch)
		}
		if !reflect.DeepEqual(f.Epoch().Clustering.Assign, leader.Epoch().Clustering.Assign) {
			return clusterResult{}, fmt.Errorf("follower %d state diverged from the leader", i)
		}
		replicas = append(replicas, f)
	}

	// The classify workload: a seeded draw over the full corpus, the
	// same documents for every replica.
	const classifyOps = 4000
	rng := rand.New(rand.NewSource(seed + 7))
	all := append(append([]cafc.Document(nil), fx.Genesis...), fx.Pool...)
	work := make([]cafc.Document, classifyOps)
	for i := range work {
		work[i] = all[rng.Intn(len(all))]
	}

	measure := func(r *cafc.Live) (float64, error) {
		e := r.Epoch()
		// One warm pass so first-touch costs are off the clock.
		if _, _, err := e.Classify(work[0]); err != nil {
			return 0, err
		}
		start := time.Now()
		for _, d := range work {
			if _, _, err := e.Classify(d); err != nil {
				return 0, err
			}
		}
		return float64(classifyOps) / time.Since(start).Seconds(), nil
	}

	res := clusterResult{
		Seed:        seed,
		FormPages:   n,
		K:           k,
		HostCores:   runtime.NumCPU(),
		ClassifyOps: classifyOps,
		LeaderEpoch: leader.Status().Epoch,
		FinalLag:    finalLag,
		Method:      clusterMethod,
	}
	var base float64
	for _, count := range []int{1, 2, 4} {
		row := clusterRow{Replicas: count}
		for _, r := range replicas[:count] {
			qps, err := measure(r)
			if err != nil {
				return clusterResult{}, err
			}
			row.PerReplicaQPS = append(row.PerReplicaQPS, qps)
			row.AggregateQPS += qps
		}
		if count == 1 {
			base = row.AggregateQPS
		}
		row.SpeedupVs1 = row.AggregateQPS / base
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// writeClusterJSON renders the replica table and writes the report.
func writeClusterJSON(r clusterResult, path string) error {
	fmt.Printf("%10s %14s %12s\n", "replicas", "aggregateQPS", "speedup")
	for _, row := range r.Rows {
		fmt.Printf("%10d %14.0f %11.2fx\n", row.Replicas, row.AggregateQPS, row.SpeedupVs1)
	}
	fmt.Printf("# leader epoch %d, final replication lag %d, %d classify ops/replica, %d host cores\n",
		r.LeaderEpoch, r.FinalLag, r.ClassifyOps, r.HostCores)
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
