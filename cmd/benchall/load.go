package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cafc"
	"cafc/internal/loadgen"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// loadQuality is the reproducible core of the final quality snapshot:
// the fields that depend only on the seed and the corpus, not on how
// the run's batches happened to land in time. (Epoch sequence numbers,
// timestamps and centroid churn vary with batch timing and are left to
// /debug/quality, where they belong.)
type loadQuality struct {
	Pages         int     `json:"pages"`
	K             int     `json:"k"`
	SampleSize    int     `json:"sample_size"`
	Silhouette    float64 `json:"silhouette"`
	ClusterSizes  []int   `json:"cluster_sizes"`
	MaxShare      float64 `json:"max_share"`
	Skew          float64 `json:"skew"`
	EmptyClusters int     `json:"empty_clusters"`
	Labeled       int     `json:"labeled"`
	Entropy       float64 `json:"entropy"`
	FMeasure      float64 `json:"f_measure"`
}

// loadResult is the BENCH_load.json schema: one seeded load run —
// offered vs achieved rate, per-endpoint latency quantiles, and the
// quality of the directory the run grew, measured on a final forced
// re-cluster so the numbers are reproducible at a fixed seed.
type loadResult struct {
	Seed        int64                            `json:"seed"`
	FormPages   int                              `json:"form_pages"`
	GenesisSize int                              `json:"genesis_size"`
	K           int                              `json:"k"`
	TargetQPS   float64                          `json:"target_qps"`
	AchievedQPS float64                          `json:"achieved_qps"`
	DurationSec float64                          `json:"duration_seconds"`
	Ops         int                              `json:"ops"`
	Ingested    int                              `json:"ingested"`
	Endpoints   map[string]loadgen.EndpointStats `json:"endpoints"`
	Quality     loadQuality                      `json:"quality"`
}

// loadBench founds an in-process directory from a generated corpus,
// replays the seeded mixed workload against it, then tops up whatever
// the ingest draws left in the pool and forces a final re-cluster —
// so the quality section measures the complete corpus under the
// deterministic full-rebuild path, regardless of where the load phase
// stopped.
func loadBench(n int, seed int64, reg *obs.Registry) (loadResult, error) {
	fx := loadgen.NewFixture(seed, n)
	corpus, err := cafc.NewCorpus(fx.Genesis, cafc.Options{Metrics: reg})
	if err != nil {
		return loadResult{}, err
	}
	k := len(webgen.Domains)
	cl := corpus.ClusterC(k, seed)
	live, err := cafc.NewLive(corpus, fx.Genesis, cl, cafc.LiveConfig{
		K: k, Seed: seed, BatchSize: 32, FlushInterval: time.Millisecond,
		Quality: &cafc.QualityConfig{Labels: fx.Labels},
	}, cafc.Options{Metrics: reg})
	if err != nil {
		return loadResult{}, err
	}
	defer live.Close()
	tgt := loadgen.LiveTarget{Live: live}

	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Seed: seed, QPS: 500, Ops: 2000, Metrics: reg,
	}, tgt, fx.Genesis, fx.Pool)
	if err != nil {
		return loadResult{}, err
	}

	// Top up the pool documents the mixed draw did not reach, in order,
	// so the final corpus is always genesis + full pool.
	for _, d := range fx.Pool[rep.Ingested:] {
		if err := tgt.Ingest(d); err != nil {
			return loadResult{}, err
		}
	}
	total := len(fx.Genesis) + len(fx.Pool)
	if err := waitFor(live, func(e *cafc.LiveEpoch) bool { return e.Corpus.Len() == total }); err != nil {
		return loadResult{}, err
	}
	if err := live.ForceRebuild(); err != nil {
		return loadResult{}, err
	}
	if err := waitFor(live, func(e *cafc.LiveEpoch) bool { return e.Rebuilt && e.Corpus.Len() == total }); err != nil {
		return loadResult{}, err
	}

	snap, ok := live.Quality()
	if !ok {
		return loadResult{}, fmt.Errorf("quality monitor produced no snapshot")
	}
	return loadResult{
		Seed:        seed,
		FormPages:   n,
		GenesisSize: len(fx.Genesis),
		K:           k,
		TargetQPS:   rep.TargetQPS,
		AchievedQPS: rep.AchievedQPS,
		DurationSec: rep.DurationSeconds,
		Ops:         rep.Ops,
		Ingested:    rep.Ingested,
		Endpoints:   rep.Endpoints,
		Quality: loadQuality{
			Pages:         snap.Pages,
			K:             snap.K,
			SampleSize:    snap.SampleSize,
			Silhouette:    snap.Silhouette,
			ClusterSizes:  snap.ClusterSizes,
			MaxShare:      snap.MaxShare,
			Skew:          snap.Skew,
			EmptyClusters: snap.EmptyClusters,
			Labeled:       snap.Labeled,
			Entropy:       snap.Entropy,
			FMeasure:      snap.FMeasure,
		},
	}, nil
}

// waitFor polls the published epoch until cond holds (30s bound).
func waitFor(live *cafc.Live, cond func(*cafc.LiveEpoch) bool) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e := live.Epoch(); e != nil && cond(e) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for epoch condition: %+v", live.Status())
}

// writeLoadJSON renders the result table and writes the JSON report.
func writeLoadJSON(r loadResult, path string) error {
	fmt.Printf("%10s %10s %10s %10s %10s %10s\n",
		"endpoint", "ops", "p50ms", "p95ms", "p99ms", "errors")
	for _, ep := range []string{"classify", "ingest", "browse"} {
		s, ok := r.Endpoints[ep]
		if !ok {
			continue
		}
		fmt.Printf("%10s %10d %10.2f %10.2f %10.2f %10d\n",
			ep, s.Ops, s.P50MS, s.P95MS, s.P99MS, s.Errors)
	}
	fmt.Printf("# qps %.0f offered / %.0f achieved; final F=%.3f entropy=%.3f silhouette=%.3f\n",
		r.TargetQPS, r.AchievedQPS, r.Quality.FMeasure, r.Quality.Entropy, r.Quality.Silhouette)
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
