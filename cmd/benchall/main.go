// Command benchall runs the paper's full experimental evaluation and
// prints every table and figure, or a single experiment selected with
// -exp.
//
// Usage:
//
//	benchall -n 454 -seed 2007 -runs 20              # everything
//	benchall -exp figure2                            # one experiment
//	benchall -exp scaling -sizes 100,200,454,1000
//	benchall -exp scale -sizes 5000,20000,50000      # pruned-kernel curve
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cafc/internal/dataset"
	"cafc/internal/experiments"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchall: ")
	var (
		n       = flag.Int("n", 454, "form pages in the generated corpus")
		seed    = flag.Int64("seed", 2007, "corpus seed")
		runs    = flag.Int("runs", experiments.DefaultRuns, "CAFC-C averaging runs")
		exp     = flag.String("exp", "all", "experiment: all | figure2 | table1 | figure3 | table2 | weights | hubstats | hacseeds | errors | seeding | hubdesign | futurework | postquery | selectk | engines | scaling | ingest | scale | load | cluster | search")
		sizes   = flag.String("sizes", "", "corpus sizes (default 100,200,454 for -exp scaling; 5000,20000,50000 for -exp scale; 454,5000,20000 for -exp ingest)")
		jsonOut = flag.String("json", "", "output file (default BENCH_ingest.json for -exp ingest; BENCH_scale.json for -exp scale; BENCH_load.json for -exp load; BENCH_search.json for -exp search)")
		metrics = flag.Bool("metrics", false, "collect run telemetry and dump the metrics snapshot to stderr on exit")
	)
	flag.Parse()

	// Run-config banner: the effective settings a reader needs to
	// reproduce this run.
	fmt.Printf("# benchall seed=%d n=%d runs=%d k=%d workers=%d engine=compiled exp=%s\n",
		*seed, *n, *runs, len(webgen.Domains), runtime.GOMAXPROCS(0), *exp)

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		defer func() {
			fmt.Fprintln(os.Stderr, "# metrics snapshot")
			if err := reg.WritePrometheus(os.Stderr); err != nil {
				log.Print(err)
			}
		}()
	}

	if *exp == "ingest" {
		res, err := ingestSweep(parseSizes(defaultStr(*sizes, "454,5000,20000")), *seed)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeIngestJSON(res, defaultStr(*jsonOut, "BENCH_ingest.json")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "load" {
		res, err := loadBench(*n, *seed, reg)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeLoadJSON(res, defaultStr(*jsonOut, "BENCH_load.json")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "search" {
		res, err := searchBench(*n, *seed, reg)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeSearchJSON(res, defaultStr(*jsonOut, "BENCH_search.json")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "cluster" {
		res, err := clusterBench(*n, *seed, reg)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeClusterJSON(res, defaultStr(*jsonOut, "BENCH_cluster.json")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "scale" {
		rep, err := scaleBench(parseSizes(defaultStr(*sizes, "5000,20000,50000")), *seed)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeScaleJSON(rep, defaultStr(*jsonOut, "BENCH_scale.json")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *exp == "scaling" {
		rows, err := experiments.Scaling(parseSizes(defaultStr(*sizes, "100,200,454")), *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10s %10s %10s %10s\n", "formPages", "entropy", "F-measure", "ms")
		for _, r := range rows {
			fmt.Printf("%10d %10.3f %10.3f %10d\n", r.FormPages, r.Entropy, r.FMeasure, r.Millis)
		}
		return
	}

	env, err := experiments.NewEnvMetrics(webgen.Config{Seed: *seed, FormPages: *n}, reg)
	if err != nil {
		log.Fatal(err)
	}

	switch *exp {
	case "all":
		fmt.Print(experiments.RunAll(env, *runs))
	case "figure2":
		fmt.Print(experiments.RenderQuality(experiments.Figure2(env, *runs, experiments.DefaultMinCard)))
	case "table1":
		fmt.Print(experiments.RenderTable1(experiments.Table1(env)))
	case "figure3":
		sweep, ref := experiments.Figure3(env, *runs)
		fmt.Print(experiments.RenderFigure3(sweep, ref))
	case "table2":
		fmt.Print(experiments.RenderQuality(experiments.Table2(env, *runs, experiments.DefaultMinCard)))
	case "weights":
		fmt.Print(experiments.RenderQuality(experiments.WeightAblation(env, experiments.DefaultMinCard)))
	case "hubstats":
		fmt.Print(experiments.HubStatsExp(env))
	case "hacseeds":
		fmt.Print(experiments.RenderQuality(experiments.HACSeedsExp(env, experiments.DefaultMinCard)))
	case "errors":
		fmt.Print(experiments.ErrorAnalysis(env, experiments.DefaultMinCard))
	case "seeding":
		fmt.Print(experiments.RenderQuality(experiments.SeedingAblation(env, *runs)))
	case "postquery":
		rows, err := experiments.PostQuery(env, experiments.DefaultMinCard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderPostQuery(rows))
	case "selectk":
		best, curve := experiments.KSelection(env, 2, 12)
		fmt.Print(experiments.RenderKSelection(best, curve))
	case "futurework":
		fmt.Print(experiments.RenderQuality(experiments.FutureWork(env, experiments.DefaultMinCard)))
	case "hubdesign":
		fmt.Print(experiments.RenderQuality(experiments.HubDesignAblation(env, experiments.DefaultMinCard)))
	case "engines":
		fmt.Print(experiments.RenderEngineComparison(experiments.EngineComparison(env, 3)))
	case "stats":
		fmt.Print(dataset.ComputeStats(env.Corpus))
	default:
		log.Fatalf("unknown -exp %q", *exp)
	}
}

// defaultStr returns s, or def when s is empty — per-experiment flag
// defaults.
func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// parseSizes parses a comma-separated corpus-size list.
func parseSizes(s string) []int {
	var ns []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -sizes entry %q", f)
		}
		ns = append(ns, v)
	}
	return ns
}
