package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	icafc "cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs"
	"cafc/internal/stream"
	"cafc/internal/webgen"
)

// serialCheckMax bounds the corpus size at which the bench rebuilds the
// model serially to verify parallel-build bit-identity. Above it the
// duplicate build would dominate the run (build is the most expensive
// phase); the property itself is worker-count-independent by
// construction and pinned at every size class by
// TestBuildParallelBitIdentical.
const serialCheckMax = 50000

// exactKernelMax bounds the corpus size at which the exhaustive and
// bound-pruned kernels (and everything referenced against their shared
// assignment) still run: every exact kernel is O(iterations * n * k)
// with full convergence, which at a million pages is hours of
// single-kernel wall-clock for a number the smaller sizes already pin.
// Above it the sweep records the kernels built for that regime — the
// LSH candidate tier and mini-batch — whose contracts (self-recall,
// per-pass reduction) do not need the exhaustive reference.
const exactKernelMax = 200000

// approxRecallFloor / approxReductionFloor are the tentpole's
// acceptance contract, enforced as hard errors so CI smokes fail
// loudly: at and above 5k pages every approx kernel must self-recall
// >= 0.99, and at and above 20k the tuned configuration must cut
// distance computations per assignment pass by at least 5x against the
// exhaustive scan's n*k. The floor is on the per-pass number because
// that is the kernel property the candidate tier controls; the *total*
// ratio (also recorded) additionally depends on how many rounds each
// trajectory happens to take before no point moves, which at k=8 can
// swing it either way (at 50k the exhaustive run converges in 9 rounds
// and the approx run takes 14, so a 5.5x per-pass saving lands at 3.5x
// total).
const (
	approxRecallFloor    = 0.99
	approxRecallMinN     = 5000
	approxReductionFloor = 5.0
	approxReductionMinN  = 20000
)

// scaleKernel is one kernel measurement at one corpus size.
type scaleKernel struct {
	Kernel     string `json:"kernel"`
	Millis     int64  `json:"millis"`
	Iterations int    `json:"iterations"`
	Distances  int64  `json:"distance_computations"`
	Pruned     int64  `json:"pruned_points"`
	// Reduction is the exhaustive run's total distance computations
	// divided by this kernel's total.
	Reduction float64 `json:"distance_reduction"`
	// PerIterReduction is the exhaustive per-pass cost (n*k) divided by
	// this kernel's mean distance computations per assignment pass — the
	// per-pass speedup curve the tentpole exists to record, independent
	// of how many rounds each trajectory takes. 0 for the mini-batch
	// kernel, whose sampled rounds make a per-pass mean meaningless.
	PerIterReduction float64 `json:"distance_reduction_per_iter,omitempty"`
	// Recall is the self-consistency recall of an inexact kernel: the
	// fraction of points whose final assignment is the exact
	// lowest-index argmax over the run's own final centroids. 1.0 for
	// every exact kernel (they are bit-identical to exhaustive, checked
	// below); the approx rows report what the candidate tier loses.
	Recall float64 `json:"recall"`
	// Fallbacks counts points whose candidate set degenerated to the
	// full exhaustive scan (approx kernels only).
	Fallbacks int64 `json:"approx_fallbacks,omitempty"`
}

// scaleSize is every measurement for one corpus size.
type scaleSize struct {
	FormPages   int   `json:"form_pages"`
	K           int   `json:"k"`
	ParseMillis int64 `json:"parse_millis"`
	// BuildMillis is the BuildWith wall-clock at the default worker
	// count; TFIDFMillis and CompileMillis split it into the
	// term-counting/embedding phase and the packed-engine compile phase
	// (read from the build registry's phase histograms).
	BuildMillis   int64 `json:"model_build_millis"`
	TFIDFMillis   int64 `json:"tfidf_millis"`
	CompileMillis int64 `json:"compile_millis"`
	// BuildSerialMillis is the Workers:1 reference build, measured while
	// verifying the parallel build is bit-identical to it; 0 above
	// serialCheckMax where the duplicate build is skipped.
	BuildSerialMillis    int64         `json:"build_serial_millis,omitempty"`
	Kernels              []scaleKernel `json:"kernels"`
	ClassifyNsOp         int64         `json:"classify_ns_per_op"`
	ClassifyAllocs       int64         `json:"classify_allocs_per_op"`
	ApproxClassifyNsOp   int64         `json:"approx_classify_ns_per_op"`
	ApproxClassifyAllocs int64         `json:"approx_classify_allocs_per_op"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	Seed int64 `json:"seed"`
	// MoveFrac is the k-means convergence threshold used for every
	// kernel run. It is set effectively to zero (stop only when no point
	// moves) so the runs converge fully — the regime where bound pruning
	// pays, and the one a growing directory actually operates in; the
	// library default stops far earlier.
	MoveFrac float64     `json:"move_frac"`
	Sizes    []scaleSize `json:"sizes"`
}

// approxBenchConfigs are the two candidate-tier operating points the
// curve records: the library default (conservative: 128-bit signatures,
// C=2, margin 8) and the tuned throughput point (512-bit signatures buy
// a faithful enough ranking that a single candidate plus a 16-bit tie
// margin holds the recall floor while evaluating ~1.5 exact
// similarities per point).
var approxBenchConfigs = []struct {
	Name string
	Ap   cluster.Approx
}{
	{"approx", cluster.Approx{Enabled: true}},
	{"approx_fast", cluster.Approx{Enabled: true, Bits: 512, Candidates: 1, Margin: 16}},
}

// scaleBench measures exact (pruned) kernels, the LSH candidate-tier
// kernels, and the mini-batch kernel against the exhaustive reference
// on forms-only corpora of the given sizes, plus the model build
// (parallel vs serial) and the classify serve path. Every exact pruned
// run is checked byte-identical to the exhaustive assignment and
// strictly cheaper in distance computations, and every approx run is
// held to the recall/reduction contract; a violation is an error, so CI
// smokes fail loudly instead of recording a regression.
func scaleBench(sizes []int, seed int64) (scaleReport, error) {
	rep := scaleReport{Seed: seed, MoveFrac: 1e-12}
	k := len(webgen.Domains)
	printKernelHeader()
	for _, n := range sizes {
		t0 := time.Now()
		c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n, FormsOnly: true})
		docs := make([]stream.Doc, 0, n)
		labels := make([]string, 0, n)
		for _, u := range c.FormPages {
			docs = append(docs, stream.Doc{URL: u, HTML: c.ByURL[u].HTML})
			labels = append(labels, string(c.Labels[u]))
		}
		// The same sharded parse stage the live pipeline runs per batch;
		// nil slots are parse failures.
		parsed := stream.ParseDocs(docs, form.DefaultWeights, 0)
		fps := make([]*form.FormPage, len(parsed))
		for i, fp := range parsed {
			if fp == nil {
				return rep, fmt.Errorf("%s: parse failed", docs[i].URL)
			}
			fps[i] = fp
		}
		docs = nil // release the raw HTML before the model build
		row := scaleSize{FormPages: n, K: k, ParseMillis: time.Since(t0).Milliseconds()}

		breg := obs.NewRegistry()
		t1 := time.Now()
		m := icafc.BuildWith(fps, icafc.BuildOpts{Metrics: breg, Workers: 0})
		row.BuildMillis = time.Since(t1).Milliseconds()
		row.TFIDFMillis = histogramSumMillis(breg, "model_df_build_seconds") +
			histogramSumMillis(breg, "vector_tfidf_build_seconds")
		row.CompileMillis = histogramSumMillis(breg, "vector_compile_seconds")
		fmt.Printf("# n=%d parse=%dms build=%dms (tfidf=%dms compile=%dms)\n",
			n, row.ParseMillis, row.BuildMillis, row.TFIDFMillis, row.CompileMillis)

		if n <= serialCheckMax {
			t2 := time.Now()
			ms := icafc.BuildWith(fps, icafc.BuildOpts{Workers: 1})
			row.BuildSerialMillis = time.Since(t2).Milliseconds()
			for i := 0; i < ms.Len(); i++ {
				if !reflect.DeepEqual(ms.Point(i), m.Point(i)) {
					return rep, fmt.Errorf("n=%d: parallel build not bit-identical to serial at point %d", n, i)
				}
			}
		}

		runExact := n <= exactKernelMax
		var ref cluster.Result
		var exhaustive int64
		if runExact {
			for _, prune := range []cluster.PruneMode{cluster.PruneOff, cluster.PruneHamerly, cluster.PruneElkan} {
				reg := obs.NewRegistry()
				t1 := time.Now()
				res := cluster.KMeans(m, k, nil, cluster.Options{
					Rand: rand.New(rand.NewSource(seed)), Prune: prune,
					MoveFrac: rep.MoveFrac, Metrics: reg,
				})
				kr := scaleKernel{
					Kernel:     prune.String(),
					Millis:     time.Since(t1).Milliseconds(),
					Iterations: res.Iterations,
					Distances:  counterValue(reg, "distance_computations_total"),
					Pruned:     counterValue(reg, "kmeans_pruned_total"),
					Recall:     1,
				}
				kr.PerIterReduction = perIterReduction(n, k, kr.Iterations, kr.Distances)
				if prune == cluster.PruneOff {
					ref = res
					kr.Kernel = "off"
					kr.Reduction = 1
				} else {
					if !reflect.DeepEqual(ref.Assign, res.Assign) {
						return rep, fmt.Errorf("n=%d prune=%s: assignments differ from exhaustive", n, prune)
					}
					if res.Iterations != ref.Iterations {
						return rep, fmt.Errorf("n=%d prune=%s: iterations %d != exhaustive %d", n, prune, res.Iterations, ref.Iterations)
					}
					if kr.Distances >= row.Kernels[0].Distances {
						return rep, fmt.Errorf("n=%d prune=%s: %d distance computations, not below exhaustive %d",
							n, prune, kr.Distances, row.Kernels[0].Distances)
					}
					kr.Reduction = float64(row.Kernels[0].Distances) / float64(kr.Distances)
				}
				printKernelRow(n, kr)
				row.Kernels = append(row.Kernels, kr)
			}
			exhaustive = row.Kernels[0].Distances
		} else {
			fmt.Printf("# n=%d: exact kernels skipped above %d pages — approx/minibatch only, reductions relative to n*k per pass\n",
				n, exactKernelMax)
		}

		// Candidate-tier kernels: same seed and stop criterion, restricted
		// to LSH candidates. These runs converge to their own local optimum
		// (often in far fewer rounds than the exhaustive run, whose tail
		// iterations shuffle near-tie points), so the honest quality metric
		// is self-consistency recall over their own final centroids, and
		// the honest cost metric is total distance computations.
		for _, cfg := range approxBenchConfigs {
			reg := obs.NewRegistry()
			t1 := time.Now()
			res := cluster.KMeans(m, k, nil, cluster.Options{
				Rand: rand.New(rand.NewSource(seed)), MoveFrac: rep.MoveFrac,
				Metrics: reg, Approx: cfg.Ap,
			})
			kr := scaleKernel{
				Kernel:     cfg.Name,
				Millis:     time.Since(t1).Milliseconds(),
				Iterations: res.Iterations,
				Distances:  counterValue(reg, "distance_computations_total"),
				Fallbacks:  counterValue(reg, "approx_fallback_total"),
			}
			if exhaustive > 0 {
				kr.Reduction = float64(exhaustive) / float64(kr.Distances)
			}
			kr.PerIterReduction = perIterReduction(n, k, kr.Iterations, kr.Distances)
			recall, err := assignmentRecall(m, res)
			if err != nil {
				return rep, fmt.Errorf("n=%d kernel=%s: %v", n, cfg.Name, err)
			}
			kr.Recall = recall
			if n >= approxRecallMinN && kr.Recall < approxRecallFloor {
				return rep, fmt.Errorf("n=%d kernel=%s: recall %.4f below the %.2f contract",
					n, cfg.Name, kr.Recall, approxRecallFloor)
			}
			printKernelRow(n, kr)
			if cfg.Name == "approx_fast" && n >= approxReductionMinN && kr.PerIterReduction < approxReductionFloor {
				return rep, fmt.Errorf("n=%d kernel=%s: per-pass distance reduction %.2fx below the %.1fx contract",
					n, cfg.Name, kr.PerIterReduction, approxReductionFloor)
			}
			row.Kernels = append(row.Kernels, kr)
		}

		// Mini-batch: sampled update rounds plus one exact full assignment
		// pass, so its recall over its own centroids is 1.0 by
		// construction — computed anyway as a live check.
		{
			reg := obs.NewRegistry()
			t1 := time.Now()
			res := cluster.MiniBatchKMeans(m, k, nil, cluster.Options{
				Rand: rand.New(rand.NewSource(seed)), MoveFrac: rep.MoveFrac, Metrics: reg,
			}, cluster.MiniBatch{})
			kr := scaleKernel{
				Kernel:     "minibatch",
				Millis:     time.Since(t1).Milliseconds(),
				Iterations: res.Iterations,
				Distances:  counterValue(reg, "distance_computations_total"),
			}
			if exhaustive > 0 {
				kr.Reduction = float64(exhaustive) / float64(kr.Distances)
			}
			recall, err := assignmentRecall(m, res)
			if err != nil {
				return rep, fmt.Errorf("n=%d kernel=minibatch: %v", n, err)
			}
			kr.Recall = recall
			printKernelRow(n, kr)
			row.Kernels = append(row.Kernels, kr)
			if !runExact {
				// No exhaustive reference at this size: the serve-path bench
				// below classifies against the mini-batch clustering instead.
				ref = res
			}
		}

		// Serve-path throughput: classify one held-out page against the
		// trained centroids through the pooled fast path, exact and with
		// the candidate tier.
		probe, err := heldOutPage(seed + 1)
		if err != nil {
			return rep, err
		}
		clf := icafc.NewClassifier(m, ref, majorityLabels(ref, labels))
		row.ClassifyNsOp, row.ClassifyAllocs = benchClassify(clf, probe)
		aclf := icafc.NewClassifier(m, ref, majorityLabels(ref, labels))
		aclf.SetApprox(cluster.Approx{Enabled: true})
		row.ApproxClassifyNsOp, row.ApproxClassifyAllocs = benchClassify(aclf, probe)
		fmt.Printf("# n=%d serial_build=%dms classify=%dns/op approx_classify=%dns/op\n",
			n, row.BuildSerialMillis, row.ClassifyNsOp, row.ApproxClassifyNsOp)
		rep.Sizes = append(rep.Sizes, row)
	}
	return rep, nil
}

// perIterReduction is the exhaustive per-pass cost n*k over a kernel's
// mean distance computations per assignment pass.
func perIterReduction(n, k, iters int, dist int64) float64 {
	if iters == 0 || dist == 0 {
		return 0
	}
	return float64(n) * float64(k) * float64(iters) / float64(dist)
}

// assignmentRecall is the self-consistency recall of a clustering
// result: the fraction of points whose recorded assignment equals the
// exact lowest-index argmax over the result's own final centroids. An
// exact kernel scores 1.0 by definition; an approx kernel scores below
// it exactly where the candidate tier mis-ranked a point's best
// centroid out of the evaluated set.
func assignmentRecall(m *icafc.Model, res cluster.Result) (float64, error) {
	idx := m.NewCentroidIndex(res.Centroids)
	if idx == nil {
		return 0, fmt.Errorf("centroid index unavailable (engine disabled?)")
	}
	sims := make([]float64, res.K)
	scratch := make([]float64, idx.ScratchLen())
	same := 0
	for i := range res.Assign {
		idx.Sims(sims, scratch, i)
		best, bestSim := -1, -1.0
		for c, s := range sims {
			if s > bestSim {
				best, bestSim = c, s
			}
		}
		if best == res.Assign[i] {
			same++
		}
	}
	return float64(same) / float64(len(res.Assign)), nil
}

// benchClassify measures one classifier's steady-state Classify cost.
func benchClassify(clf *icafc.Classifier, probe *form.FormPage) (nsOp, allocs int64) {
	clf.Classify(probe) // warm pool + lazy engine
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clf.Classify(probe)
		}
	})
	return br.NsPerOp(), br.AllocsPerOp()
}

// majorityLabels names each cluster after its majority gold label.
func majorityLabels(res cluster.Result, classes []string) []string {
	counts := make([]map[string]int, res.K)
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for i, c := range res.Assign {
		if c >= 0 && c < res.K {
			counts[c][classes[i]]++
		}
	}
	labels := make([]string, res.K)
	for c, m := range counts {
		best := 0
		for l, n := range m {
			if n > best || (n == best && l < labels[c]) {
				labels[c], best = l, n
			}
		}
	}
	return labels
}

// heldOutPage parses one form page the training corpus has never seen.
func heldOutPage(seed int64) (*form.FormPage, error) {
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: 1, FormsOnly: true})
	u := c.FormPages[0]
	return form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
}

// counterValue reads one counter family from a registry snapshot.
func counterValue(reg *obs.Registry, name string) int64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Value)
		}
	}
	return 0
}

// histogramSumMillis reads one histogram family's observation sum (in
// seconds) from a registry snapshot and converts it to milliseconds.
func histogramSumMillis(reg *obs.Registry, name string) int64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Sum * 1000)
		}
	}
	return 0
}

// printKernelHeader / printKernelRow emit the human-readable table
// incrementally, one row per finished kernel run — a full sweep takes
// the better part of an hour, and a contract violation should leave
// every number measured before it on the terminal.
func printKernelHeader() {
	fmt.Printf("%10s %12s %6s %12s %14s %12s %10s %10s %8s %10s\n",
		"formPages", "kernel", "iters", "ms", "distances", "pruned", "reduction", "perpass", "recall", "fallbacks")
}

func printKernelRow(n int, kr scaleKernel) {
	fmt.Printf("%10d %12s %6d %12d %14d %12d %9.2fx %9.2fx %8.4f %10d\n",
		n, kr.Kernel, kr.Iterations, kr.Millis, kr.Distances, kr.Pruned,
		kr.Reduction, kr.PerIterReduction, kr.Recall, kr.Fallbacks)
}

// writeScaleJSON writes the JSON report to path (the table itself is
// printed incrementally by scaleBench).
func writeScaleJSON(rep scaleReport, path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
