package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	icafc "cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// scaleKernel is one kernel measurement at one corpus size.
type scaleKernel struct {
	Prune      string  `json:"prune"`
	Millis     int64   `json:"millis"`
	Iterations int     `json:"iterations"`
	Distances  int64   `json:"distance_computations"`
	Pruned     int64   `json:"pruned_points"`
	// Reduction is exhaustive distance computations divided by this
	// kernel's — the speedup curve the tentpole exists to record.
	Reduction float64 `json:"distance_reduction"`
}

// scaleSize is every measurement for one corpus size.
type scaleSize struct {
	FormPages      int           `json:"form_pages"`
	K              int           `json:"k"`
	BuildMillis    int64         `json:"model_build_millis"`
	Kernels        []scaleKernel `json:"kernels"`
	ClassifyNsOp   int64         `json:"classify_ns_per_op"`
	ClassifyAllocs int64         `json:"classify_allocs_per_op"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	Seed int64 `json:"seed"`
	// MoveFrac is the k-means convergence threshold used for every
	// kernel run. It is set effectively to zero (stop only when no point
	// moves) so the runs converge fully — the regime where bound pruning
	// pays, and the one a growing directory actually operates in; the
	// library default stops far earlier.
	MoveFrac float64     `json:"move_frac"`
	Sizes    []scaleSize `json:"sizes"`
}

// scaleBench measures pruned vs. exhaustive clustering kernels and the
// classify serve path on forms-only corpora of the given sizes. Every
// pruned run is checked byte-identical to the exhaustive assignment
// and strictly cheaper in distance computations; a violation is an
// error, so CI smokes fail loudly instead of recording a regression.
func scaleBench(sizes []int, seed int64) (scaleReport, error) {
	rep := scaleReport{Seed: seed, MoveFrac: 1e-12}
	k := len(webgen.Domains)
	for _, n := range sizes {
		t0 := time.Now()
		c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n, FormsOnly: true})
		fps := make([]*form.FormPage, 0, n)
		labels := make([]string, 0, n)
		for _, u := range c.FormPages {
			fp, err := form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
			if err != nil {
				return rep, fmt.Errorf("%s: %v", u, err)
			}
			fps = append(fps, fp)
			labels = append(labels, string(c.Labels[u]))
		}
		m := icafc.Build(fps, false)
		m.EnsureCompiled()
		row := scaleSize{FormPages: n, K: k, BuildMillis: time.Since(t0).Milliseconds()}

		var ref cluster.Result
		for _, prune := range []cluster.PruneMode{cluster.PruneOff, cluster.PruneHamerly, cluster.PruneElkan} {
			reg := obs.NewRegistry()
			t1 := time.Now()
			res := cluster.KMeans(m, k, nil, cluster.Options{
				Rand: rand.New(rand.NewSource(seed)), Prune: prune,
				MoveFrac: rep.MoveFrac, Metrics: reg,
			})
			kr := scaleKernel{
				Prune:      prune.String(),
				Millis:     time.Since(t1).Milliseconds(),
				Iterations: res.Iterations,
				Distances:  counterValue(reg, "distance_computations_total"),
				Pruned:     counterValue(reg, "kmeans_pruned_total"),
			}
			if prune == cluster.PruneOff {
				ref = res
				kr.Prune = "off"
				kr.Reduction = 1
			} else {
				if !reflect.DeepEqual(ref.Assign, res.Assign) {
					return rep, fmt.Errorf("n=%d prune=%s: assignments differ from exhaustive", n, prune)
				}
				if res.Iterations != ref.Iterations {
					return rep, fmt.Errorf("n=%d prune=%s: iterations %d != exhaustive %d", n, prune, res.Iterations, ref.Iterations)
				}
				if kr.Distances >= row.Kernels[0].Distances {
					return rep, fmt.Errorf("n=%d prune=%s: %d distance computations, not below exhaustive %d",
						n, prune, kr.Distances, row.Kernels[0].Distances)
				}
				kr.Reduction = float64(row.Kernels[0].Distances) / float64(kr.Distances)
			}
			row.Kernels = append(row.Kernels, kr)
		}

		// Serve-path throughput: classify one held-out page against the
		// trained centroids through the pooled fast path.
		clf := icafc.NewClassifier(m, ref, majorityLabels(ref, labels))
		probe, err := heldOutPage(seed + 1)
		if err != nil {
			return rep, err
		}
		clf.Classify(probe) // warm pool + lazy engine
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clf.Classify(probe)
			}
		})
		row.ClassifyNsOp = br.NsPerOp()
		row.ClassifyAllocs = br.AllocsPerOp()
		rep.Sizes = append(rep.Sizes, row)
	}
	return rep, nil
}

// majorityLabels names each cluster after its majority gold label.
func majorityLabels(res cluster.Result, classes []string) []string {
	counts := make([]map[string]int, res.K)
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for i, c := range res.Assign {
		if c >= 0 && c < res.K {
			counts[c][classes[i]]++
		}
	}
	labels := make([]string, res.K)
	for c, m := range counts {
		best := 0
		for l, n := range m {
			if n > best || (n == best && l < labels[c]) {
				labels[c], best = l, n
			}
		}
	}
	return labels
}

// heldOutPage parses one form page the training corpus has never seen.
func heldOutPage(seed int64) (*form.FormPage, error) {
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: 1, FormsOnly: true})
	u := c.FormPages[0]
	return form.Parse(u, c.ByURL[u].HTML, form.DefaultWeights)
}

// counterValue reads one counter family from a registry snapshot.
func counterValue(reg *obs.Registry, name string) int64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Value)
		}
	}
	return 0
}

// writeScaleJSON prints the human-readable table and writes the JSON
// report to path.
func writeScaleJSON(rep scaleReport, path string) error {
	fmt.Printf("%10s %10s %6s %12s %14s %12s %10s %12s %10s\n",
		"formPages", "kernel", "iters", "ms", "distances", "pruned", "reduction", "classify_ns", "allocs")
	for _, sz := range rep.Sizes {
		for _, kr := range sz.Kernels {
			fmt.Printf("%10d %10s %6d %12d %14d %12d %9.2fx %12d %10d\n",
				sz.FormPages, kr.Prune, kr.Iterations, kr.Millis, kr.Distances, kr.Pruned, kr.Reduction,
				sz.ClassifyNsOp, sz.ClassifyAllocs)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
