package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"cafc"
	"cafc/internal/obs"
	"cafc/internal/webgen"
)

// ingestResult is the BENCH_ingest.json schema: one streaming-ingestion
// throughput measurement, with enough run configuration to reproduce it.
type ingestResult struct {
	Seed        int64   `json:"seed"`
	FormPages   int     `json:"form_pages"`
	GenesisSize int     `json:"genesis_size"`
	Streamed    int     `json:"streamed"`
	K           int     `json:"k"`
	BatchSize   int     `json:"batch_size"`
	Millis      int64   `json:"millis"`
	DocsPerSec  float64 `json:"docs_per_sec"`
	FinalEpoch  int64   `json:"final_epoch"`
	Rebuilds    int64   `json:"rebuilds"`
	Entropy     float64 `json:"entropy"`
	FMeasure    float64 `json:"f_measure"`
}

// ingestBench streams a generated corpus through the live pipeline and
// measures end-to-end ingestion throughput: genesis from the first
// quarter, the rest over Ingest, drift rebuilds enabled at the default
// threshold. Quality of the final epoch is evaluated against the
// generator's gold labels, so a throughput win that degrades clustering
// shows up in the same row.
func ingestBench(n int, seed int64, reg *obs.Registry) (ingestResult, error) {
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	var docs []cafc.Document
	labels := make(map[string]string, n)
	for _, u := range c.FormPages {
		docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
		labels[u] = string(c.Labels[u])
	}
	genesisSize := n / 4
	if genesisSize < 8 {
		genesisSize = 8
	}
	corpus, err := cafc.NewCorpus(docs[:genesisSize], cafc.Options{Metrics: reg})
	if err != nil {
		return ingestResult{}, err
	}
	k := len(webgen.Domains)
	cl := corpus.ClusterC(k, seed)
	const batchSize = 32
	l, err := cafc.NewLive(corpus, docs[:genesisSize], cl, cafc.LiveConfig{
		K: k, Seed: seed, BatchSize: batchSize, FlushInterval: time.Millisecond,
	})
	if err != nil {
		return ingestResult{}, err
	}
	defer l.Close()

	streamed := docs[genesisSize:]
	t0 := time.Now()
	for _, d := range streamed {
		for {
			err := l.Ingest(d)
			if err == nil {
				break
			}
			if !errors.Is(err, cafc.ErrBacklog) {
				return ingestResult{}, err
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for l.Epoch().Corpus.Len() < len(docs) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)

	e := l.Epoch()
	entropy, f := e.Clustering.Quality(labels)
	st := l.Status()
	return ingestResult{
		Seed:        seed,
		FormPages:   n,
		GenesisSize: genesisSize,
		Streamed:    len(streamed),
		K:           k,
		BatchSize:   batchSize,
		Millis:      elapsed.Milliseconds(),
		DocsPerSec:  float64(len(streamed)) / elapsed.Seconds(),
		FinalEpoch:  e.Epoch,
		Rebuilds:    st.Rebuilds,
		Entropy:     entropy,
		FMeasure:    f,
	}, nil
}

// writeIngestJSON renders the result and writes it to path.
func writeIngestJSON(r ingestResult, path string) error {
	fmt.Printf("%10s %10s %10s %10s %10s %10s %10s\n",
		"streamed", "ms", "docs/sec", "epoch", "rebuilds", "entropy", "F")
	fmt.Printf("%10d %10d %10.0f %10d %10d %10.3f %10.3f\n",
		r.Streamed, r.Millis, r.DocsPerSec, r.FinalEpoch, r.Rebuilds, r.Entropy, r.FMeasure)
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
