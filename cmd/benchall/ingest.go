package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"cafc"
	"cafc/internal/form"
	"cafc/internal/search"
	"cafc/internal/stream"
	"cafc/internal/webgen"
)

// ingestVerifyMax bounds the corpus size at which the sweep replays the
// run's WAL through serial and parallel manual pipelines to verify
// bit-identity (each replay costs about as much as the run itself).
// The property is pinned at every size by the stream package's
// TestParallelIngestBitIdenticalEpochs; the bench re-proves it on the
// sizes where the duplicate work is cheap.
const ingestVerifyMax = 5000

// ingestConfigs is the sweep grid: batch size x ingest workers x group
// commit x flush interval. The first row is the seed-comparable baseline
// (batch 32, 1ms flushes, one fsync per record, serial parse); the last
// is the headline operating point (large batches so the per-epoch
// full-corpus work amortizes, group commit, one parse worker per CPU).
var ingestConfigs = []struct {
	Batch, Workers, GroupCommit int
	Flush                       time.Duration
}{
	{32, 1, 0, time.Millisecond},         // baseline: the original pipeline's settings
	{32, 1, 8, time.Millisecond},         // group commit alone
	{256, 1, 0, 50 * time.Millisecond},   // batch amortization alone
	{2048, 1, 32, 25 * time.Millisecond}, // large batches + group commit, serial parse
	{2048, 0, 32, 25 * time.Millisecond}, // headline: large batches + group commit + all cores
}

// ingestResult is one BENCH_ingest.json row: a streaming-ingestion
// throughput measurement at one sweep point, with enough run
// configuration to reproduce it.
type ingestResult struct {
	Seed          int64   `json:"seed"`
	FormPages     int     `json:"form_pages"`
	GenesisSize   int     `json:"genesis_size"`
	Streamed      int     `json:"streamed"`
	K             int     `json:"k"`
	BatchSize     int     `json:"batch_size"`
	IngestWorkers int     `json:"ingest_workers"`
	GroupCommit   int     `json:"group_commit"`
	Millis        int64   `json:"millis"`
	DocsPerSec    float64 `json:"docs_per_sec"`
	// FsyncsTotal counts WAL fsyncs during the streaming phase (from
	// wal_fsync_total); GroupCommitsTotal counts the multi-record ones.
	FsyncsTotal       int64 `json:"fsyncs_total"`
	GroupCommitsTotal int64 `json:"wal_group_commits_total"`
	// AllocsPerDoc is the whole-process heap allocation count per
	// streamed document (parse, embed, cluster, WAL, publish — the
	// number the pooled tokenizer and accumulators push down).
	AllocsPerDoc float64 `json:"allocs_per_doc"`
	FinalEpoch   int64   `json:"final_epoch"`
	Rebuilds     int64   `json:"rebuilds"`
	Entropy      float64 `json:"entropy"`
	FMeasure     float64 `json:"f_measure"`
}

// ingestSweep streams generated corpora through WAL-backed live
// pipelines across the sweep grid and, at the sizes where the duplicate
// work is affordable, replays the baseline run's WAL through serial and
// parallel pipelines to enforce bit-identity (model, search index, WAL
// bytes) as a hard error.
func ingestSweep(sizes []int, seed int64) ([]ingestResult, error) {
	var out []ingestResult
	fmt.Printf("%8s %6s %8s %7s %9s %9s %10s %7s %11s %6s %8s %7s %7s\n",
		"pages", "batch", "workers", "commit", "streamed", "ms", "docs/sec", "fsyncs", "allocs/doc", "epoch", "rebuild", "entropy", "F")
	for _, n := range sizes {
		c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
		var docs []cafc.Document
		labels := make(map[string]string, n)
		for _, u := range c.FormPages {
			docs = append(docs, cafc.Document{URL: u, HTML: c.ByURL[u].HTML})
			labels[u] = string(c.Labels[u])
		}
		var baselineWAL string
		for i, cfg := range ingestConfigs {
			r, dir, err := runIngest(docs, labels, n, seed, cfg.Batch, cfg.Workers, cfg.GroupCommit, cfg.Flush)
			if err != nil {
				return out, fmt.Errorf("n=%d batch=%d workers=%d commit=%d: %w", n, cfg.Batch, cfg.Workers, cfg.GroupCommit, err)
			}
			if i == 0 {
				baselineWAL = dir // keep for the bit-identity replay below
			} else {
				os.RemoveAll(dir)
			}
			fmt.Printf("%8d %6d %8d %7d %9d %9d %10.0f %7d %11.0f %6d %8d %7.3f %7.3f\n",
				n, r.BatchSize, r.IngestWorkers, r.GroupCommit, r.Streamed, r.Millis, r.DocsPerSec,
				r.FsyncsTotal, r.AllocsPerDoc, r.FinalEpoch, r.Rebuilds, r.Entropy, r.FMeasure)
			out = append(out, r)
		}
		if n <= ingestVerifyMax {
			if err := verifyIngestParallel(baselineWAL, len(webgen.Domains), seed); err != nil {
				return out, fmt.Errorf("n=%d: %w", n, err)
			}
			fmt.Printf("# n=%d: parallel replay bit-identical to serial (model, search index, WAL bytes)\n", n)
		} else {
			fmt.Printf("# n=%d: bit-identity replay skipped above %d pages (pinned by the stream test suite)\n", n, ingestVerifyMax)
		}
		os.RemoveAll(baselineWAL)
	}
	return out, nil
}

// runIngest streams one corpus through a WAL-backed live pipeline at
// one sweep point. The returned directory holds the run's WAL (the
// caller removes it, after the bit-identity replay when it wants one).
func runIngest(docs []cafc.Document, labels map[string]string, n int, seed int64, batch, workers, groupCommit int, flush time.Duration) (ingestResult, string, error) {
	dir, err := os.MkdirTemp("", "benchingest-*")
	if err != nil {
		return ingestResult{}, "", err
	}
	genesisSize := n / 4
	if genesisSize < 8 {
		genesisSize = 8
	}
	// The registry rides on the corpus (NewLive inherits the model's
	// metrics), so the WAL fsync counters below are actually attached.
	reg := cafc.NewRegistry()
	corpus, err := cafc.NewCorpus(docs[:genesisSize], cafc.Options{Metrics: reg})
	if err != nil {
		return ingestResult{}, dir, err
	}
	k := len(webgen.Domains)
	cl := corpus.ClusterC(k, seed)
	l, err := cafc.NewLive(corpus, docs[:genesisSize], cl, cafc.LiveConfig{
		K: k, Seed: seed, BatchSize: batch, FlushInterval: flush,
		Dir: dir, IngestWorkers: workers, GroupCommit: groupCommit,
	}, cafc.Options{Metrics: reg})
	if err != nil {
		return ingestResult{}, dir, err
	}

	streamed := docs[genesisSize:]
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for _, d := range streamed {
		for {
			err := l.Ingest(d)
			if err == nil {
				break
			}
			if !errors.Is(err, cafc.ErrBacklog) {
				l.Close()
				return ingestResult{}, dir, err
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Poll the pipeline status, not Epoch(): the public epoch view
	// materializes lazily on first read, and the measured window should
	// not charge ingest for conversions of epochs nobody consumed.
	for l.Status().Pages < len(docs) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	e := l.Epoch()
	entropy, f := e.Clustering.Quality(labels)
	st := l.Status()
	fsyncs := counterValue(reg, "wal_fsync_total")
	commits := counterValue(reg, "wal_group_commit_total")
	// Drain after the counters are read: the final flush-and-snapshot is
	// shutdown cost, not steady-state ingest cost — but it must run so
	// the WAL left behind is the complete durable history.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := l.Drain(ctx); err != nil {
		return ingestResult{}, dir, err
	}

	return ingestResult{
		Seed:              seed,
		FormPages:         n,
		GenesisSize:       genesisSize,
		Streamed:          len(streamed),
		K:                 k,
		BatchSize:         batch,
		IngestWorkers:     st.IngestWorkers,
		GroupCommit:       groupCommit,
		Millis:            elapsed.Milliseconds(),
		DocsPerSec:        float64(len(streamed)) / elapsed.Seconds(),
		FsyncsTotal:       fsyncs,
		GroupCommitsTotal: commits,
		AllocsPerDoc:      float64(m1.Mallocs-m0.Mallocs) / float64(len(streamed)),
		FinalEpoch:        e.Epoch,
		Rebuilds:          st.Rebuilds,
		Entropy:           entropy,
		FMeasure:          f,
	}, dir, nil
}

// replayState is one manual pipeline's final state after replaying a
// WAL: everything the bit-identity contract compares.
type replayState struct {
	epoch *stream.Epoch
	snap  *search.Snapshot
	wal   []byte
}

// verifyIngestParallel replays walDir's records through manual
// pipelines at several worker counts and errors unless the final model
// state, the incrementally grown search index, and the re-appended WAL
// bytes are bit-identical to the serial replay — the sweep's proof that
// -ingest-workers is a pure throughput knob.
func verifyIngestParallel(walDir string, k int, seed int64) error {
	frames, _, err := stream.TailWAL(walDir, 0)
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		return fmt.Errorf("bit-identity replay: %s holds no WAL records", walDir)
	}
	replay := func(workers int) (replayState, error) {
		rdir, err := os.MkdirTemp("", "benchingest-replay-*")
		if err != nil {
			return replayState{}, err
		}
		defer os.RemoveAll(rdir)
		st, err := stream.Open(rdir)
		if err != nil {
			return replayState{}, err
		}
		defer st.Close()
		b := search.NewBuilder(nil)
		var last *stream.Epoch
		l := stream.NewManual(stream.Config{
			K: k, Seed: seed, IngestWorkers: workers,
			OnPublish: func(e *stream.Epoch) {
				// The same incremental indexing discipline the live search
				// subsystem uses: index exactly the docs beyond the cursor.
				for _, d := range e.Docs[b.Len():] {
					title, terms := search.PageTerms(d.URL, d.HTML, form.DefaultWeights)
					b.Add(d.URL, title, terms)
				}
				last = e
			},
		}, nil, nil)
		for _, fr := range frames {
			if err := st.AppendFrame(fr); err != nil {
				return replayState{}, err
			}
			if err := l.ApplyReplicated(fr.Rec); err != nil {
				return replayState{}, err
			}
		}
		if last == nil {
			return replayState{}, fmt.Errorf("replay published no epoch")
		}
		snap := b.Freeze(last.Seq, last.Result.Assign, last.Result.K, search.Options{})
		wal, err := os.ReadFile(filepath.Join(rdir, "wal.log"))
		if err != nil {
			return replayState{}, err
		}
		return replayState{epoch: last, snap: snap, wal: wal}, nil
	}

	ref, err := replay(1)
	if err != nil {
		return err
	}
	for _, workers := range []int{2, 4} {
		got, err := replay(workers)
		if err != nil {
			return err
		}
		if got.epoch.Seq != ref.epoch.Seq || got.epoch.Model.Len() != ref.epoch.Model.Len() {
			return fmt.Errorf("workers=%d: epoch %d/%d pages, serial %d/%d",
				workers, got.epoch.Seq, got.epoch.Model.Len(), ref.epoch.Seq, ref.epoch.Model.Len())
		}
		if !reflect.DeepEqual(got.epoch.Result.Assign, ref.epoch.Result.Assign) ||
			!reflect.DeepEqual(got.epoch.Result.Centroids, ref.epoch.Result.Centroids) {
			return fmt.Errorf("workers=%d: clustering not bit-identical to serial replay", workers)
		}
		for i := 0; i < ref.epoch.Model.Len(); i++ {
			if !reflect.DeepEqual(got.epoch.Model.Point(i), ref.epoch.Model.Point(i)) {
				return fmt.Errorf("workers=%d: compiled page %d not bit-identical to serial replay", workers, i)
			}
		}
		if !reflect.DeepEqual(got.snap, ref.snap) {
			return fmt.Errorf("workers=%d: search index not bit-identical to serial replay", workers)
		}
		if !bytes.Equal(got.wal, ref.wal) {
			return fmt.Errorf("workers=%d: replicated WAL bytes differ from serial replay", workers)
		}
	}
	return nil
}

// writeIngestJSON writes the sweep rows to path (the table is printed
// incrementally by ingestSweep).
func writeIngestJSON(rows []ingestResult, path string) error {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
