package cafc

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	icafc "cafc/internal/cafc"
	"cafc/internal/form"
	"cafc/internal/vector"
)

// corpusSnapshot is the gob wire format of a built corpus: the TF-IDF
// vectors and document-frequency tables, everything clustering and
// classification need. Raw extraction artifacts (parsed forms) are not
// persisted; a loaded corpus can cluster, compare and classify, but not
// re-derive Table 1-style extraction statistics.
//
// Version 2 adds the live-directory fields (Epoch, WALOffset); the
// earlier fields are byte-compatible with version 1, and Load accepts
// both (gob leaves absent fields zero).
type corpusSnapshot struct {
	Version  int
	URLs     []string
	Weights  form.Weights
	Uniform  bool
	Features int
	C1, C2   float64
	FC, PC   []map[string]float64
	FCDFN    int
	FCDF     map[string]int
	PCDFN    int
	PCDF     map[string]int
	// Epoch and WALOffset (v2) tie the snapshot to the live-ingestion
	// stream: the epoch this corpus state was published as, and how
	// many WAL records it already reflects (recovery replays the rest).
	Epoch     int64
	WALOffset int64
}

const snapshotVersion = 2

// SnapshotInfo is the stream positioning a v2 snapshot carries: the
// model epoch it was taken at and the number of WAL records it already
// reflects. Zero values describe a plain static corpus.
type SnapshotInfo struct {
	Epoch     int64
	WALOffset int64
}

// Save writes the built corpus (model vectors + corpus statistics) as
// gzipped gob, so an expensive crawl+build can be reused across
// processes — e.g. by a long-running classification service.
func (c *Corpus) Save(w io.Writer) error {
	return c.SaveSnapshot(w, SnapshotInfo{})
}

// SaveSnapshot is Save with explicit stream positioning — the live
// directory checkpoints its corpus with the epoch and WAL offset the
// snapshot reflects, so a restart recovers to that epoch and replays
// only the WAL tail.
func (c *Corpus) SaveSnapshot(w io.Writer, info SnapshotInfo) error {
	snap := corpusSnapshot{
		Version:   snapshotVersion,
		URLs:      c.urls,
		Weights:   c.weights,
		Uniform:   c.model.Uniform,
		Features:  int(c.model.Features),
		C1:        c.model.C1,
		C2:        c.model.C2,
		Epoch:     info.Epoch,
		WALOffset: info.WALOffset,
	}
	for _, p := range c.model.Pages {
		snap.FC = append(snap.FC, p.FC)
		snap.PC = append(snap.PC, p.PC)
	}
	snap.FCDFN, snap.FCDF = c.model.FCDF.Snapshot()
	snap.PCDFN, snap.PCDF = c.model.PCDF.Snapshot()
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("cafc: save: %w", err)
	}
	return zw.Close()
}

// LoadCorpus reads a corpus written by Save or SaveSnapshot (snapshot
// versions 1 and 2 both load). Run options do not survive
// serialization — a snapshot records model state, not wiring — so pass
// Options to re-attach them: Metrics re-enables telemetry and Retry
// re-enables the resilient backlink policy, exactly as NewCorpus would
// have wired them.
func LoadCorpus(r io.Reader, opts ...Options) (*Corpus, error) {
	c, _, err := LoadSnapshot(r, opts...)
	return c, err
}

// LoadSnapshot is LoadCorpus plus the stream positioning the snapshot
// carries (zero for v1 snapshots and static saves).
func LoadSnapshot(r io.Reader, opts ...Options) (*Corpus, SnapshotInfo, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("cafc: load: %w", err)
	}
	defer zr.Close()
	var snap corpusSnapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("cafc: decode: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, SnapshotInfo{}, fmt.Errorf("cafc: snapshot version %d not supported", snap.Version)
	}
	if len(snap.FC) != len(snap.URLs) || len(snap.PC) != len(snap.URLs) {
		return nil, SnapshotInfo{}, fmt.Errorf("cafc: snapshot corrupt: %d urls, %d/%d vectors",
			len(snap.URLs), len(snap.FC), len(snap.PC))
	}
	m := &icafc.Model{
		C1:       snap.C1,
		C2:       snap.C2,
		Features: Features(snap.Features),
		Uniform:  snap.Uniform,
		FCDF:     vector.RestoreDocFreq(snap.FCDFN, snap.FCDF),
		PCDF:     vector.RestoreDocFreq(snap.PCDFN, snap.PCDF),
		Metrics:  o.Metrics,
	}
	for i, u := range snap.URLs {
		m.Pages = append(m.Pages, &icafc.Page{URL: u, FC: snap.FC[i], PC: snap.PC[i]})
	}
	m.EnsureCompiled()
	c := &Corpus{
		model:             m,
		urls:              snap.URLs,
		weights:           snap.Weights,
		retry:             o.Retry,
		skipNonSearchable: o.SkipNonSearchable,
	}
	return c, SnapshotInfo{Epoch: snap.Epoch, WALOffset: snap.WALOffset}, nil
}
