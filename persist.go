package cafc

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"

	icafc "cafc/internal/cafc"
	"cafc/internal/form"
	"cafc/internal/vector"
)

// corpusSnapshot is the gob wire format of a built corpus: the TF-IDF
// vectors and document-frequency tables, everything clustering and
// classification need. Raw extraction artifacts (parsed forms) are not
// persisted; a loaded corpus can cluster, compare and classify, but not
// re-derive Table 1-style extraction statistics.
type corpusSnapshot struct {
	Version  int
	URLs     []string
	Weights  form.Weights
	Uniform  bool
	Features int
	C1, C2   float64
	FC, PC   []map[string]float64
	FCDFN    int
	FCDF     map[string]int
	PCDFN    int
	PCDF     map[string]int
}

const snapshotVersion = 1

// Save writes the built corpus (model vectors + corpus statistics) as
// gzipped gob, so an expensive crawl+build can be reused across
// processes — e.g. by a long-running classification service.
func (c *Corpus) Save(w io.Writer) error {
	snap := corpusSnapshot{
		Version:  snapshotVersion,
		URLs:     c.urls,
		Weights:  c.weights,
		Uniform:  c.model.Uniform,
		Features: int(c.model.Features),
		C1:       c.model.C1,
		C2:       c.model.C2,
	}
	for _, p := range c.model.Pages {
		snap.FC = append(snap.FC, p.FC)
		snap.PC = append(snap.PC, p.PC)
	}
	snap.FCDFN, snap.FCDF = c.model.FCDF.Snapshot()
	snap.PCDFN, snap.PCDF = c.model.PCDF.Snapshot()
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("cafc: save: %w", err)
	}
	return zw.Close()
}

// LoadCorpus reads a corpus written by Save.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("cafc: load: %w", err)
	}
	defer zr.Close()
	var snap corpusSnapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cafc: decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("cafc: snapshot version %d not supported", snap.Version)
	}
	if len(snap.FC) != len(snap.URLs) || len(snap.PC) != len(snap.URLs) {
		return nil, fmt.Errorf("cafc: snapshot corrupt: %d urls, %d/%d vectors",
			len(snap.URLs), len(snap.FC), len(snap.PC))
	}
	m := &icafc.Model{
		C1:       snap.C1,
		C2:       snap.C2,
		Features: Features(snap.Features),
		Uniform:  snap.Uniform,
		FCDF:     vector.RestoreDocFreq(snap.FCDFN, snap.FCDF),
		PCDF:     vector.RestoreDocFreq(snap.PCDFN, snap.PCDF),
	}
	for i, u := range snap.URLs {
		m.Pages = append(m.Pages, &icafc.Page{URL: u, FC: snap.FC[i], PC: snap.PC[i]})
	}
	m.EnsureCompiled()
	return &Corpus{model: m, urls: snap.URLs, weights: snap.Weights}, nil
}
