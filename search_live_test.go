package cafc

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"cafc/internal/repl"
)

// TestLiveSearchEpochSwapInvalidation pins the cache contract: within
// an epoch a repeated query is a cache hit returning the identical
// result, and after an epoch swap the same query is a miss answered
// from the new model — a cached result never outlives its epoch.
func TestLiveSearchEpochSwapInvalidation(t *testing.T) {
	docs, _, _, _ := testDocs(t, 29, 40)
	corpus, err := NewCorpus(docs[:20])
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)
	l, err := NewLive(corpus, docs[:20], cl, LiveConfig{
		K: 4, Seed: 1, BatchSize: 8, FlushInterval: 10 * time.Millisecond,
		Search: &SearchConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}

	const q = "hotel rooms"
	r1, cached, err := l.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first query reported cached")
	}
	if r1.Epoch != 1 || len(r1.Hits) == 0 {
		t.Fatalf("genesis search wrong: %+v", r1)
	}
	r2, cached, err := l.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("repeat query within the epoch not served from cache")
	}
	if r2 != r1 {
		t.Fatal("cache returned a different result")
	}

	for _, d := range docs[20:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "ingested docs applied", func() bool {
		return l.Epoch().Corpus.Len() == 40
	})
	if se, ae := l.SearchEpoch(), l.AppliedEpoch(); se != ae {
		t.Fatalf("search snapshot at epoch %d, pipeline at %d", se, ae)
	}

	r3, cached, err := l.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("query after epoch swap served from a stale cache")
	}
	if r3.Epoch <= r1.Epoch {
		t.Fatalf("post-swap result at epoch %d, want > %d", r3.Epoch, r1.Epoch)
	}
	if r3.Total < r1.Total {
		t.Fatalf("post-swap result lost documents: %d < %d", r3.Total, r1.Total)
	}
	if labels := l.SearchLabels(); len(labels) != 4 {
		t.Fatalf("SearchLabels = %v, want 4 cluster labels", labels)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSearchDisabledAndCold(t *testing.T) {
	docs, _, _, _ := testDocs(t, 31, 16)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)
	off, err := NewLive(corpus, docs, cl, LiveConfig{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if _, _, err := off.Search("hotel", 5); !errors.Is(err, ErrSearchDisabled) {
		t.Fatalf("Search without config = %v, want ErrSearchDisabled", err)
	}
	if off.SearchLabels() != nil || off.SearchEpoch() != 0 {
		t.Fatal("disabled search leaked state")
	}

	cold, err := NewLive(nil, nil, nil, LiveConfig{K: 4, Seed: 1, Search: &SearchConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if _, _, err := cold.Search("hotel", 5); !errors.Is(err, ErrSearchCold) {
		t.Fatalf("Search before first epoch = %v, want ErrSearchCold", err)
	}
}

// TestLiveFollowerSearchByteIdentity pins the replication contract for
// retrieval: a follower tailed to the leader's epoch serves
// byte-identical search responses — hits, scores, facets and labels —
// for every query, cached or not.
func TestLiveFollowerSearchByteIdentity(t *testing.T) {
	docs, _, _, _ := testDocs(t, 43, 48)
	ldir, fdir := t.TempDir(), t.TempDir()
	cfg := LiveConfig{
		K: 4, Seed: 7, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
		Dir: ldir, Search: &SearchConfig{},
	}
	l, err := NewLive(nil, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, d := range docs[:32] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "leader ingest applied", func() bool {
		e := l.Epoch()
		return e != nil && e.Corpus.Len() == 32
	})

	ctx := context.Background()
	if err := repl.Bootstrap(ctx, repl.DirSource{Dir: ldir}, fdir); err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Dir = fdir
	f, err := RecoverFollower(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tail := &repl.Tailer{Source: repl.DirSource{Dir: ldir}, Target: f}
	if err := tail.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	assertReplicaEqual(t, f, l)

	assertSearchEqual := func() {
		t.Helper()
		if fe, le := f.SearchEpoch(), l.SearchEpoch(); fe != le {
			t.Fatalf("follower search at epoch %d, leader at %d", fe, le)
		}
		for _, q := range []string{"hotel rooms", "cheap flights", "search jobs", "used cars", "dvd"} {
			lr, _, err := l.Search(q, 20)
			if err != nil {
				t.Fatal(err)
			}
			fr, _, err := f.Search(q, 20)
			if err != nil {
				t.Fatal(err)
			}
			lb, _ := json.Marshal(lr)
			fb, _ := json.Marshal(fr)
			if string(lb) != string(fb) {
				t.Fatalf("%q: follower response differs from leader:\n%s\nvs\n%s", q, fb, lb)
			}
			// A cached repeat must serve the same bytes.
			fr2, cached, err := f.Search(q, 20)
			if err != nil {
				t.Fatal(err)
			}
			if !cached || fr2 != fr {
				t.Fatalf("%q: follower repeat not a cache hit on the same result", q)
			}
		}
		if fl, ll := f.SearchLabels(), l.SearchLabels(); len(fl) != len(ll) {
			t.Fatalf("label counts differ: %v vs %v", fl, ll)
		} else {
			for i := range fl {
				if fl[i] != ll[i] {
					t.Fatalf("cluster %d label: follower %q, leader %q", i, fl[i], ll[i])
				}
			}
		}
	}
	assertSearchEqual()

	// Leader moves on; follower re-converges at the next epoch.
	for _, d := range docs[32:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "second leader ingest applied", func() bool {
		return l.Epoch().Corpus.Len() == 48
	})
	if err := tail.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	assertReplicaEqual(t, f, l)
	assertSearchEqual()
}
