package cafc

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"io"
	"os"
	"strings"
	"testing"
)

func newGzip(w io.Writer) *gzip.Writer { return gzip.NewWriter(w) }

func TestSaveLoadRoundTrip(t *testing.T) {
	docs, labels, roots, backlinks := testDocs(t, 11, 120)
	orig, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
	}
	// Similarities must survive exactly.
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			a, b := orig.Similarity(i, j), loaded.Similarity(i, j)
			if diff := a - b; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("sim(%d,%d) drifted: %v vs %v", i, j, a, b)
			}
		}
	}
	// Clustering a loaded corpus works and matches quality-wise.
	clOrig := orig.ClusterCH(8, backlinks, roots, 1)
	clLoaded := loaded.ClusterCH(8, backlinks, roots, 1)
	eo, fo := clOrig.Quality(labels)
	el, fl := clLoaded.Quality(labels)
	// Quality sums floats in map-iteration order, so allow rounding noise.
	if abs(eo-el) > 1e-9 || abs(fo-fl) > 1e-9 {
		t.Errorf("quality drifted: (%.3f, %.3f) vs (%.3f, %.3f)", eo, fo, el, fl)
	}
}

func TestLoadedCorpusClassifies(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 12, 120)
	orig, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cl := loaded.ClusterC(8, 1)
	names := make([]string, len(cl.Clusters))
	for i, members := range cl.Clusters {
		counts := map[string]int{}
		for _, u := range members {
			counts[labels[u]]++
		}
		for d, n := range counts {
			if names[i] == "" || n > counts[names[i]] {
				names[i] = d
			}
		}
	}
	clf := loaded.Classifier(cl, names)
	held, heldLabels, _, _ := testDocs(t, 13, 40)
	correct, total := 0, 0
	for _, d := range held {
		pred, ok, err := clf.Classify(d)
		if err != nil || !ok {
			continue
		}
		total++
		if pred.Label == heldLabels[d.URL] {
			correct++
		}
	}
	if total < 25 {
		t.Fatalf("classified only %d", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Errorf("loaded-corpus classifier accuracy %.3f", acc)
	}
}

func TestLoadCorpusRejectsGarbage(t *testing.T) {
	if _, err := LoadCorpus(strings.NewReader("not gzip")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip, invalid gob.
	var buf bytes.Buffer
	zw := newGzip(&buf)
	_, _ = zw.Write([]byte("junk"))
	_ = zw.Close()
	if _, err := LoadCorpus(&buf); err == nil {
		t.Error("gzip-wrapped junk accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestLoadV1Snapshot pins backward compatibility: a version-1 snapshot
// written before the live-directory fields existed (checked in under
// testdata/) must still load, and re-saving it produces a version-2
// snapshot that round-trips with stream positioning intact.
func TestLoadV1Snapshot(t *testing.T) {
	raw, err := os.ReadFile("testdata/snapshot_v1.gob.gz")
	if err != nil {
		t.Fatal(err)
	}

	// Guard the fixture itself: it must really be version 1, or this
	// test silently stops covering the compatibility path.
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var snap corpusSnapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Fatalf("fixture is version %d — regenerate it with v1 code or update the test", snap.Version)
	}

	loaded, info, err := LoadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info != (SnapshotInfo{}) {
		t.Errorf("v1 snapshot carries stream positioning: %+v", info)
	}
	if loaded.Len() != 24 {
		t.Fatalf("fixture corpus has %d pages, want 24", loaded.Len())
	}
	// The fixture was built from webgen seed 41; a fresh build over the
	// same documents must agree on similarities.
	docs, _, _, _ := testDocs(t, 41, 24)
	fresh, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < loaded.Len(); i++ {
		for j := i + 1; j < loaded.Len(); j++ {
			if d := abs(loaded.Similarity(i, j) - fresh.Similarity(i, j)); d > 1e-12 {
				t.Fatalf("sim(%d,%d) drifted %v from fresh build", i, j, d)
			}
		}
	}

	// v1 -> v2 round-trip: re-save with stream positioning, reload, and
	// both the model and the positioning must survive.
	var buf bytes.Buffer
	if err := loaded.SaveSnapshot(&buf, SnapshotInfo{Epoch: 7, WALOffset: 3}); err != nil {
		t.Fatal(err)
	}
	re, info2, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info2 != (SnapshotInfo{Epoch: 7, WALOffset: 3}) {
		t.Errorf("v2 positioning lost: %+v", info2)
	}
	if re.Len() != loaded.Len() {
		t.Fatalf("v2 reload lost pages: %d vs %d", re.Len(), loaded.Len())
	}
	if d := abs(re.Similarity(0, 1) - loaded.Similarity(0, 1)); d > 1e-12 {
		t.Errorf("v2 reload drifted: %v", d)
	}
}

// TestLoadCorpusRejectsFutureVersion keeps the version gate honest.
func TestLoadCorpusRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	zw := newGzip(&buf)
	if err := gob.NewEncoder(zw).Encode(corpusSnapshot{Version: snapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	if _, err := LoadCorpus(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
}

// TestLoadCorpusReattachesRunOptions is the regression test for run
// options dropped on load: a corpus loaded with Options must emit
// telemetry, keep the resilient backlink policy, and honor the skip
// policy — the same wiring NewCorpus would have done.
func TestLoadCorpusReattachesRunOptions(t *testing.T) {
	docs, _, _, _ := testDocs(t, 17, 32)
	orig, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	loaded, err := LoadCorpus(&buf, Options{
		Metrics:           reg,
		Retry:             &Retry{MaxAttempts: 2},
		SkipNonSearchable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded.ClusterC(4, 1)
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "kmeans_runs_total" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("loaded corpus emitted no kmeans telemetry — Metrics option dropped on load")
	}
	if loaded.retry == nil || loaded.retry.MaxAttempts != 2 {
		t.Error("Retry option dropped on load")
	}
	if _, err := loaded.Append([]Document{{URL: "http://x/", HTML: "<p>formless</p>"}}); err != nil {
		t.Errorf("SkipNonSearchable option dropped on load: %v", err)
	}
	if len(loaded.Skipped) != 1 {
		t.Errorf("skip bookkeeping after load: %v", loaded.Skipped)
	}
}
