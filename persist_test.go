package cafc

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

func newGzip(w io.Writer) *gzip.Writer { return gzip.NewWriter(w) }

func TestSaveLoadRoundTrip(t *testing.T) {
	docs, labels, roots, backlinks := testDocs(t, 11, 120)
	orig, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), orig.Len())
	}
	// Similarities must survive exactly.
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			a, b := orig.Similarity(i, j), loaded.Similarity(i, j)
			if diff := a - b; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("sim(%d,%d) drifted: %v vs %v", i, j, a, b)
			}
		}
	}
	// Clustering a loaded corpus works and matches quality-wise.
	clOrig := orig.ClusterCH(8, backlinks, roots, 1)
	clLoaded := loaded.ClusterCH(8, backlinks, roots, 1)
	eo, fo := clOrig.Quality(labels)
	el, fl := clLoaded.Quality(labels)
	// Quality sums floats in map-iteration order, so allow rounding noise.
	if abs(eo-el) > 1e-9 || abs(fo-fl) > 1e-9 {
		t.Errorf("quality drifted: (%.3f, %.3f) vs (%.3f, %.3f)", eo, fo, el, fl)
	}
}

func TestLoadedCorpusClassifies(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 12, 120)
	orig, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cl := loaded.ClusterC(8, 1)
	names := make([]string, len(cl.Clusters))
	for i, members := range cl.Clusters {
		counts := map[string]int{}
		for _, u := range members {
			counts[labels[u]]++
		}
		for d, n := range counts {
			if names[i] == "" || n > counts[names[i]] {
				names[i] = d
			}
		}
	}
	clf := loaded.Classifier(cl, names)
	held, heldLabels, _, _ := testDocs(t, 13, 40)
	correct, total := 0, 0
	for _, d := range held {
		pred, ok, err := clf.Classify(d)
		if err != nil || !ok {
			continue
		}
		total++
		if pred.Label == heldLabels[d.URL] {
			correct++
		}
	}
	if total < 25 {
		t.Fatalf("classified only %d", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Errorf("loaded-corpus classifier accuracy %.3f", acc)
	}
}

func TestLoadCorpusRejectsGarbage(t *testing.T) {
	if _, err := LoadCorpus(strings.NewReader("not gzip")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip, invalid gob.
	var buf bytes.Buffer
	zw := newGzip(&buf)
	_, _ = zw.Write([]byte("junk"))
	_ = zw.Close()
	if _, err := LoadCorpus(&buf); err == nil {
		t.Error("gzip-wrapped junk accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
