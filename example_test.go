package cafc_test

import (
	"fmt"

	"cafc"
)

// Example demonstrates the minimal pipeline: parse form pages, build the
// form-page model, cluster with CAFC-C and inspect the result.
func Example() {
	docs := []cafc.Document{
		{URL: "http://jobs.example/", HTML: `<html><head><title>Job Search</title></head><body>
			<p>Browse job openings by category and state.</p>
			<form action="/q">Job Category: <select name="cat"><option>Engineering</option><option>Nursing</option></select>
			<input type="submit" value="Search Jobs"></form></body></html>`},
		{URL: "http://careers.example/", HTML: `<html><head><title>Career Listings</title></head><body>
			<p>Employers are hiring: post your resume, browse positions.</p>
			<form action="/find">Industry: <select name="ind"><option>Engineering</option><option>Sales</option></select>
			<input type="submit" value="Find Jobs"></form></body></html>`},
		{URL: "http://books.example/", HTML: `<html><head><title>Bookstore</title></head><body>
			<p>Millions of new and used books for sale.</p>
			<form action="/s">Author: <input type="text" name="a">
			<input type="submit" value="Search Books"></form></body></html>`},
		{URL: "http://novels.example/", HTML: `<html><head><title>Novels Online</title></head><body>
			<p>Fiction bestsellers, paperback and hardcover books.</p>
			<form action="/s">Title: <input type="text" name="t">
			<input type="submit" value="Find Books"></form></body></html>`},
	}
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		panic(err)
	}
	clusters := corpus.ClusterHAC(2)
	for _, members := range clusters.Clusters {
		fmt.Println(len(members))
	}
	// Output:
	// 2
	// 2
}

// ExampleCorpus_Similarity shows the Equation 3 similarity between two
// same-domain pages versus a cross-domain pair.
func ExampleCorpus_Similarity() {
	docs := []cafc.Document{
		{URL: "a", HTML: `<html><head><title>Job Search</title></head><body>job openings employers hiring
			<form><input type="text" name="q"><input type="submit" value="Search Jobs"></form></body></html>`},
		{URL: "b", HTML: `<html><head><title>Find Jobs</title></head><body>job openings careers employment
			<form><input type="text" name="kw"><input type="submit" value="Find Jobs"></form></body></html>`},
		{URL: "c", HTML: `<html><head><title>Hotel Rooms</title></head><body>hotel availability rates rooms
			<form><input type="text" name="city"><input type="submit" value="Find Hotels"></form></body></html>`},
	}
	corpus, err := cafc.NewCorpus(docs)
	if err != nil {
		panic(err)
	}
	sameDomain := corpus.Similarity(0, 1)
	crossDomain := corpus.Similarity(0, 2)
	fmt.Println(sameDomain > crossDomain)
	// Output:
	// true
}

// ExampleOptions shows restricting the similarity to one feature space
// and tolerating non-form documents in the input.
func ExampleOptions() {
	docs := []cafc.Document{
		{URL: "form", HTML: `<form>Search: <input type="text" name="q"><input type="submit" value="Go"></form>`},
		{URL: "noform", HTML: `<p>just text</p>`},
	}
	corpus, err := cafc.NewCorpus(docs, cafc.Options{
		Features:          cafc.PCOnly,
		SkipNonSearchable: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(corpus.Len(), len(corpus.Skipped))
	// Output:
	// 1 1
}
