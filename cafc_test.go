package cafc

import (
	"testing"

	"cafc/internal/webgen"
	"cafc/internal/webgraph"
)

// testDocs builds documents and labels from a generated corpus.
func testDocs(t testing.TB, seed int64, n int) ([]Document, map[string]string, map[string]string, BacklinkFunc) {
	t.Helper()
	c := webgen.Generate(webgen.Config{Seed: seed, FormPages: n})
	var docs []Document
	labels := make(map[string]string)
	for _, u := range c.FormPages {
		docs = append(docs, Document{URL: u, HTML: c.ByURL[u].HTML})
		labels[u] = string(c.Labels[u])
	}
	g := webgraph.FromCorpus(c)
	svc := webgraph.NewBacklinkService(g, 100, 0, seed)
	return docs, labels, c.RootOf, svc.Backlinks
}

func TestNewCorpus(t *testing.T) {
	docs, _, _, _ := testDocs(t, 1, 64)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 64 {
		t.Errorf("Len = %d", corpus.Len())
	}
	urls := corpus.URLs()
	if len(urls) != 64 || urls[0] != docs[0].URL {
		t.Errorf("URLs wrong")
	}
	// Self similarity ~1, bounds hold.
	if s := corpus.Similarity(0, 0); s < 0.99 {
		t.Errorf("self sim = %v", s)
	}
	if s := corpus.Similarity(0, 1); s < 0 || s > 1 {
		t.Errorf("sim out of bounds: %v", s)
	}
}

func TestNewCorpusRejectsFormlessDoc(t *testing.T) {
	docs := []Document{{URL: "http://x.example/", HTML: "<p>no form</p>"}}
	if _, err := NewCorpus(docs); err == nil {
		t.Fatal("want error for formless doc")
	}
	corpus, err := NewCorpus(docs, Options{SkipNonSearchable: true})
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 0 || len(corpus.Skipped) != 1 {
		t.Errorf("skip bookkeeping wrong: %d admitted, %v skipped", corpus.Len(), corpus.Skipped)
	}
}

func TestClusterCQuality(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 2, 160)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(8, 0)
	if len(cl.Clusters) != 8 {
		t.Fatalf("clusters = %d", len(cl.Clusters))
	}
	total := 0
	for _, members := range cl.Clusters {
		total += len(members)
	}
	if total != 160 {
		t.Errorf("assigned %d of 160", total)
	}
	e, f := cl.Quality(labels)
	if f < 0.5 || e > 1.5 {
		t.Errorf("quality E=%.3f F=%.3f", e, f)
	}
	if len(cl.TopTerms) != 8 {
		t.Errorf("TopTerms groups = %d", len(cl.TopTerms))
	}
	for i, terms := range cl.TopTerms {
		if len(cl.Clusters[i]) > 0 && len(terms) == 0 {
			t.Errorf("cluster %d has no top terms", i)
		}
	}
}

func TestClusterCHImproves(t *testing.T) {
	docs, labels, roots, backlinks := testDocs(t, 3, 200)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	eC := 0.0
	runs := 5
	for r := 0; r < runs; r++ {
		e, _ := corpus.ClusterC(8, int64(r)).Quality(labels)
		eC += e / float64(runs)
	}
	eCH, fCH := corpus.ClusterCH(8, backlinks, roots, 0).Quality(labels)
	if eCH >= eC {
		t.Errorf("CAFC-CH entropy %.3f >= CAFC-C %.3f", eCH, eC)
	}
	if fCH < 0.8 {
		t.Errorf("CAFC-CH F = %.3f", fCH)
	}
}

func TestClusterHAC(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 4, 96)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterHAC(8)
	if len(cl.Clusters) != 8 {
		t.Fatalf("clusters = %d", len(cl.Clusters))
	}
	if _, f := cl.Quality(labels); f < 0.4 {
		t.Errorf("HAC F = %.3f", f)
	}
}

func TestFeatureOptions(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 5, 96)
	for _, feat := range []Features{FCPC, FCOnly, PCOnly} {
		corpus, err := NewCorpus(docs, Options{Features: feat})
		if err != nil {
			t.Fatal(err)
		}
		cl := corpus.ClusterC(8, 1)
		if e, f := cl.Quality(labels); e < 0 || f <= 0 {
			t.Errorf("%v: E=%.3f F=%.3f", feat, e, f)
		}
	}
}

func TestUniformWeightOption(t *testing.T) {
	docs, _, _, _ := testDocs(t, 6, 48)
	u, err := NewCorpus(docs, Options{UniformWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	// The two weightings must actually differ for some pair.
	differs := false
	for i := 0; i < 10 && !differs; i++ {
		for j := i + 1; j < 10; j++ {
			if diff := u.Similarity(i, j) - d.Similarity(i, j); diff > 1e-9 || diff < -1e-9 {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("uniform and differentiated weights produce identical similarities")
	}
}

func TestQualityIgnoresUnlabeled(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 7, 48)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(8, 0)
	partial := map[string]string{}
	for u, l := range labels {
		partial[u] = l
		if len(partial) == 10 {
			break
		}
	}
	e, f := cl.Quality(partial)
	if e < 0 || f < 0 || f > 1 {
		t.Errorf("partial-label quality E=%.3f F=%.3f", e, f)
	}
}

func TestClassifierPublicAPI(t *testing.T) {
	docs, labels, roots, backlinks := testDocs(t, 8, 200)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterCH(8, backlinks, roots, 1)
	// Auto-labelled (nil labels -> top terms).
	clf := corpus.Classifier(cl, nil)
	if len(clf.Labels()) != 8 {
		t.Fatalf("labels = %v", clf.Labels())
	}
	for _, l := range clf.Labels() {
		if l == "" {
			t.Error("auto label empty")
		}
	}
	// Majority-gold labels, then held-out accuracy.
	names := make([]string, len(cl.Clusters))
	for i, members := range cl.Clusters {
		counts := map[string]int{}
		for _, u := range members {
			counts[labels[u]]++
		}
		for d, n := range counts {
			if best := counts[names[i]]; names[i] == "" || n > best {
				names[i] = d
			}
		}
	}
	clf = corpus.Classifier(cl, names)
	held, heldLabels, _, _ := testDocs(t, 9, 80)
	correct, total := 0, 0
	for _, d := range held {
		pred, ok, err := clf.Classify(d)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		total++
		if pred.Label == heldLabels[d.URL] {
			correct++
		}
	}
	if total < 60 {
		t.Fatalf("only %d of 80 classified", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.75 {
		t.Errorf("held-out accuracy %.3f", acc)
	}
}

func TestClassifierRejectsFormlessDoc(t *testing.T) {
	docs, _, _, _ := testDocs(t, 10, 48)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	clf := corpus.Classifier(corpus.ClusterC(8, 0), nil)
	if _, _, err := clf.Classify(Document{URL: "u", HTML: "<p>nothing</p>"}); err == nil {
		t.Error("formless doc must error")
	}
	if _, err := clf.Rank(Document{URL: "u", HTML: "<p>nothing</p>"}); err == nil {
		t.Error("formless doc must error in Rank")
	}
}

func TestC1C2Weights(t *testing.T) {
	docs, _, _, _ := testDocs(t, 14, 48)
	balanced, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	pcHeavy, err := NewCorpus(docs, Options{C1: 10, C2: 1})
	if err != nil {
		t.Fatal(err)
	}
	pcOnly, err := NewCorpus(docs, Options{Features: PCOnly})
	if err != nil {
		t.Fatal(err)
	}
	// PC-heavy similarity must sit between balanced and PC-only for some
	// pair where FC and PC disagree.
	moved := false
	for i := 0; i < 12 && !moved; i++ {
		for j := i + 1; j < 12; j++ {
			b, h, p := balanced.Similarity(i, j), pcHeavy.Similarity(i, j), pcOnly.Similarity(i, j)
			if abs(b-p) < 1e-9 {
				continue
			}
			if abs(h-p) < abs(b-p) {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Error("C1/C2 weighting has no effect")
	}
}

func TestSelectKFindsDomainCount(t *testing.T) {
	docs, _, _, _ := testDocs(t, 15, 160)
	corpus, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	k, curve := corpus.SelectK(2, 10, 1)
	t.Logf("selected k=%d, curve=%+v", k, curve)
	if len(curve) != 9 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Eight domains, two of which (music/movie) overlap: accept 6..10.
	if k < 6 || k > 10 {
		t.Errorf("SelectK = %d, want near 8", k)
	}
}
