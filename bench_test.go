package cafc

// The benchmarks below regenerate every table and figure of the paper's
// evaluation over the full-size synthetic corpus (454 form pages, the
// paper's count). Each bench reports the experiment's quality numbers as
// custom metrics (entropy, F-measure) alongside the usual ns/op, so
// `go test -bench=. -benchmem` reproduces the evaluation end to end.
//
//	BenchmarkFigure2   — Figure 2  (CAFC-C / CAFC-CH × FC / PC / FC+PC)
//	BenchmarkTable1    — Table 1   (form size vs page terms outside form)
//	BenchmarkFigure3   — Figure 3  (min hub-cardinality sweep)
//	BenchmarkTable2    — Table 2   (HAC vs k-means)
//	BenchmarkWeights   — §4.4     (differentiated vs uniform weights)
//	BenchmarkHubStats  — §3.1     (hub-cluster statistics)
//	BenchmarkHACSeeds  — §4.3     (HAC-derived seeds vs hub clusters)
//	BenchmarkErrors    — §4.2     (error analysis)
//	BenchmarkScaling   — extension (corpus-size sweep)
//	BenchmarkPipeline  — end-to-end corpus build + CAFC-CH

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	icafc "cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/experiments"
	"cafc/internal/metrics"
	"cafc/internal/webgen"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// benchEnvironment lazily builds the paper-sized environment shared by the
// experiment benches.
func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		env, err := experiments.NewEnv(webgen.Config{Seed: 2007, FormPages: 454})
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = env
	})
	if benchEnv == nil {
		b.Fatal("environment failed to build")
	}
	return benchEnv
}

// unit sanitizes a metric unit: ReportMetric rejects whitespace.
func unit(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', ',':
			return '_'
		}
		return r
	}, s)
}

// report attaches a quality row's numbers to the bench output.
func report(b *testing.B, suffix string, entropy, f float64) {
	b.ReportMetric(entropy, unit("entropy/"+suffix))
	b.ReportMetric(f, unit("F/"+suffix))
}

func BenchmarkFigure2(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure2(env, 5, experiments.DefaultMinCard)
	}
	for _, r := range rows {
		report(b, r.Algorithm+"/"+r.Features, r.Entropy, r.FMeasure)
	}
}

func BenchmarkTable1(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(env)
	}
	for _, r := range rows {
		if r.Count > 0 {
			b.ReportMetric(r.AvgOutside, unit("outside-terms/"+r.Bucket))
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	env := benchEnvironment(b)
	var sweep []experiments.Figure3Row
	var ref float64
	for i := 0; i < b.N; i++ {
		sweep, ref = experiments.Figure3(env, 5)
	}
	for _, p := range sweep {
		b.ReportMetric(p.Entropy, unit("entropy/minCard="+itoa(p.MinCardinality)))
	}
	b.ReportMetric(ref, "entropy/CAFC-C-ref")
}

func BenchmarkTable2(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(env, 5, experiments.DefaultMinCard)
	}
	for _, r := range rows {
		report(b, r.Algorithm, r.Entropy, r.FMeasure)
	}
}

func BenchmarkWeights(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.WeightAblation(env, experiments.DefaultMinCard)
	}
	for _, r := range rows {
		report(b, r.Algorithm, r.Entropy, r.FMeasure)
	}
}

func BenchmarkHubStats(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.HubStatsResult
	for i := 0; i < b.N; i++ {
		r = experiments.HubStatsExp(env)
	}
	b.ReportMetric(float64(r.Stats.Clusters), "hub-clusters")
	b.ReportMetric(100*r.HomogeneousFrac, "homogeneous-pct")
	b.ReportMetric(100*r.NoBacklinkFrac, "no-backlink-pct")
	b.ReportMetric(float64(r.AfterMinCardinal), "clusters-after-prune")
}

func BenchmarkHACSeeds(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.HACSeedsExp(env, experiments.DefaultMinCard)
	}
	for _, r := range rows {
		report(b, r.Algorithm, r.Entropy, r.FMeasure)
	}
}

func BenchmarkErrors(b *testing.B) {
	env := benchEnvironment(b)
	var r experiments.ErrorResult
	for i := 0; i < b.N; i++ {
		r = experiments.ErrorAnalysis(env, experiments.DefaultMinCard)
	}
	b.ReportMetric(float64(r.Misclustered), "misclustered")
	b.ReportMetric(float64(r.SingleAttrErrors), "single-attr-errors")
	b.ReportMetric(100*r.MusicMovieFraction, "music-movie-pct")
}

func BenchmarkSeedingAblation(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SeedingAblation(env, 5)
	}
	for _, r := range rows {
		report(b, r.Algorithm, r.Entropy, r.FMeasure)
	}
}

func BenchmarkScaling(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Scaling([]int{100, 200, 454}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.FMeasure, "F/n="+itoa(r.FormPages))
		b.ReportMetric(float64(r.Millis), "ms/n="+itoa(r.FormPages))
	}
}

// BenchmarkPipeline measures the end-to-end public API path: parse every
// document, build the model, run CAFC-CH.
func BenchmarkPipeline(b *testing.B) {
	c := webgen.Generate(webgen.Config{Seed: 99, FormPages: 200})
	var docs []Document
	for _, u := range c.FormPages {
		docs = append(docs, Document{URL: u, HTML: c.ByURL[u].HTML})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus, err := NewCorpus(docs)
		if err != nil {
			b.Fatal(err)
		}
		corpus.ClusterC(8, int64(i))
	}
}

// BenchmarkKMeans454 compares the similarity engines on the paper-sized
// corpus: the map-based engine the reproduction started with, the
// compiled (term-interned packed vector) engine, and the compiled
// engine with the parallel kernels on. All three run the identical
// CAFC-CH k-means refinement — same hub seeds, same randomness — so
// the reported entropy/F must match across sub-benches while ns/op
// shows the speedup.
func BenchmarkKMeans454(b *testing.B) {
	env := benchEnvironment(b)
	seeds := icafc.SelectHubClusters(env.Model, env.HubClusters, env.K, experiments.DefaultMinCard)
	run := func(m *icafc.Model, workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var res cluster.Result
			for i := 0; i < b.N; i++ {
				res = cluster.KMeans(m, env.K, seeds, cluster.Options{
					Rand:    rand.New(rand.NewSource(1)),
					Workers: workers,
				})
			}
			l := metrics.Labeling{Assign: res.Assign, Classes: env.Classes}
			report(b, "CAFC-CH", metrics.Entropy(l), metrics.FMeasure(l))
		}
	}
	b.Run("map-serial", run(env.Model.WithEngine(false), 1))
	b.Run("compiled-serial", run(env.Model, 1))
	b.Run("compiled-parallel", run(env.Model, 0))
}

// BenchmarkEngineComparison runs the experiments-layer engine report on
// the 454-page corpus and republishes its numbers as bench metrics.
func BenchmarkEngineComparison(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.EngineRow
	for i := 0; i < b.N; i++ {
		rows = experiments.EngineComparison(env, 1)
	}
	for _, r := range rows {
		b.ReportMetric(r.Millis, unit("ms/"+r.Engine))
		b.ReportMetric(r.Entropy, unit("entropy/"+r.Engine))
	}
}

// BenchmarkEngineScaling holds the engine comparison at 454 pages and a
// 10x corpus to show the gap widening with corpus size (similarity cost
// dominates as n grows).
func BenchmarkEngineScaling(b *testing.B) {
	for _, n := range []int{454, 4540} {
		env, err := experiments.NewEnv(webgen.Config{Seed: 2007, FormPages: n})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("n="+itoa(n), func(b *testing.B) {
			var rows []experiments.EngineRow
			for i := 0; i < b.N; i++ {
				rows = experiments.EngineComparison(env, 1)
			}
			for _, r := range rows {
				b.ReportMetric(r.Millis, unit("ms/"+r.Engine))
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkHubDesignAblation(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.HubDesignAblation(env, experiments.DefaultMinCard)
	}
	for _, r := range rows {
		report(b, r.Algorithm, r.Entropy, r.FMeasure)
	}
}

func BenchmarkFutureWork(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		rows = experiments.FutureWork(env, experiments.DefaultMinCard)
	}
	for _, r := range rows {
		report(b, r.Algorithm, r.Entropy, r.FMeasure)
	}
}

func BenchmarkPostQuery(b *testing.B) {
	env := benchEnvironment(b)
	var rows []experiments.PostQueryRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PostQuery(env, experiments.DefaultMinCard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.FMeasure, unit("F/"+r.Approach+"/"+r.Subset))
	}
}

// BenchmarkIngest measures live streaming-ingestion throughput: each
// document flows through the full batch pipeline (parse, DF growth,
// incremental compile, mini-batch assignment, epoch publish). Reported
// as docs/sec alongside ns/op.
func BenchmarkIngest(b *testing.B) {
	c := webgen.Generate(webgen.Config{Seed: 77, FormPages: 200})
	var docs []Document
	for _, u := range c.FormPages {
		docs = append(docs, Document{URL: u, HTML: c.ByURL[u].HTML})
	}
	genesis := docs[:40]
	streamed := docs[40:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		corpus, err := NewCorpus(genesis)
		if err != nil {
			b.Fatal(err)
		}
		cl := corpus.ClusterC(8, 1)
		l, err := NewLive(corpus, genesis, cl, LiveConfig{
			K: 8, Seed: 1, BatchSize: 32, FlushInterval: time.Millisecond,
			DriftThreshold: 2, // isolate the incremental path from rebuild cost
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, d := range streamed {
			for {
				err := l.Ingest(d)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrBacklog) {
					b.Fatal(err)
				}
			}
		}
		for l.Epoch().Corpus.Len() < len(docs) {
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		l.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.N*len(streamed))/b.Elapsed().Seconds(), "docs/sec")
}
