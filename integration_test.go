package cafc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLinePipeline builds the CLI tools and drives the full
// operator workflow: generate a corpus, crawl it over HTTP, cluster the
// crawl result, and run one experiment — verifying the binaries compose.
func TestCommandLinePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	run := func(bin string, args ...string) string {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		return string(out)
	}

	webgen := build("webgen")
	crawler := build("crawler")
	cafcBin := build("cafc")
	benchall := build("benchall")

	corpus := filepath.Join(dir, "corpus.json.gz")
	out := run(webgen, "-n", "48", "-seed", "3", "-o", corpus)
	if !strings.Contains(out, "48 form pages") {
		t.Fatalf("webgen output:\n%s", out)
	}
	if _, err := os.Stat(corpus); err != nil {
		t.Fatal(err)
	}

	crawled := filepath.Join(dir, "crawled.json.gz")
	out = run(crawler, "-in", corpus, "-o", crawled)
	if !strings.Contains(out, "searchable forms") {
		t.Fatalf("crawler output:\n%s", out)
	}

	out = run(cafcBin, "-in", crawled, "-algo", "ch", "-k", "8", "-show", "1")
	if !strings.Contains(out, "quality vs gold labels") {
		t.Fatalf("cafc output:\n%s", out)
	}
	if !strings.Contains(out, "cluster 7") {
		t.Fatalf("cafc printed fewer than 8 clusters:\n%s", out)
	}

	out = run(benchall, "-n", "48", "-seed", "3", "-runs", "2", "-exp", "table1")
	if !strings.Contains(out, "form size") {
		t.Fatalf("benchall output:\n%s", out)
	}
}
