module cafc

go 1.22
