package cafc

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	icafc "cafc/internal/cafc"
	"cafc/internal/cluster"
	"cafc/internal/form"
	"cafc/internal/obs/quality"
	"cafc/internal/search"
	"cafc/internal/stream"
)

// LiveConfig configures a live directory: the streaming-ingestion
// pipeline that grows a corpus while it serves. Zero values select the
// defaults noted per field.
type LiveConfig struct {
	// K is the target cluster count (0 = 8).
	K int
	// Seed drives full re-cluster seeding; fixed per Live so WAL replay
	// reproduces the same epochs.
	Seed int64
	// QueueSize bounds the ingest queue (0 = 1024); a full queue makes
	// Ingest fail fast with ErrBacklog.
	QueueSize int
	// BatchSize caps documents per ingest batch (0 = 64).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits (0 = 200ms).
	FlushInterval time.Duration
	// DriftThreshold is the reassignment fraction that triggers a full
	// re-cluster (0 = 0.25; >= 1 disables drift rebuilds).
	DriftThreshold float64
	// Dir, when non-empty, makes the directory durable: ingested
	// batches are WAL-logged there before they are applied, and corpus
	// snapshots checkpoint the stream (final one on Drain, plus every
	// SnapshotEvery records). RecoverLive restarts from the same Dir.
	Dir string
	// SnapshotEvery checkpoints after every N applied WAL records
	// (0 = only on Drain).
	SnapshotEvery int
	// OnPublish observes every published epoch (in the ingest worker
	// goroutine, after the atomic swap) — serving layers rebuild their
	// per-epoch artifacts here.
	OnPublish func(*LiveEpoch)
	// Quality, when non-nil, attaches the online quality monitor: every
	// published epoch is measured (sampled silhouette, cluster balance,
	// centroid churn, and — with Labels — entropy/F-measure) and served
	// through Quality/QualityHistory. Attaching a monitor never changes
	// published epochs; it only observes.
	Quality *QualityConfig
	// Search, when non-nil, attaches the retrieval subsystem: an
	// inverted index grown incrementally on each ingest batch and frozen
	// per epoch, served through Live.Search with ranked top-k hits and
	// labeled dynamic facets. Works on leaders and followers alike.
	Search *SearchConfig
	// IngestWorkers shards the per-batch parse/tokenize/embed stage
	// (0 = one per CPU, 1 = the serial reference path). Published epochs
	// are bit-identical for every value, so the knob tunes throughput
	// only.
	IngestWorkers int
	// GroupCommit, when > 0, batches WAL fsyncs: up to this many ingest
	// records buffer in memory and commit under one fsync — at the cap,
	// when the CommitWindow elapses, or on drain/snapshot. A crash loses
	// only buffered (never-acknowledged-durable) records; recovery stays
	// epoch-exact over the durable prefix. Leaders only — followers keep
	// one fsync per replicated frame so their resume offset never trails
	// what they applied.
	GroupCommit int
	// CommitWindow bounds how long a buffered record may wait for its
	// fsync under GroupCommit (0 = FlushInterval).
	CommitWindow time.Duration
}

// QualityConfig configures the online quality monitor attached through
// LiveConfig.Quality. Zero values select the defaults noted per field.
type QualityConfig struct {
	// SampleSize caps the reservoir sample the silhouette is computed
	// over (0 = 256). Per-epoch cost is O(SampleSize²) similarities.
	SampleSize int
	// Seed drives the reservoir RNG (0 = LiveConfig.Seed), making the
	// sample deterministic for a fixed corpus growth.
	Seed int64
	// RingSize bounds the retained snapshot history (0 = 64).
	RingSize int
	// Labels maps page URLs to gold classes; when set, labeled epochs
	// also report the paper's entropy and F-measure.
	Labels map[string]string
}

// QualitySnapshot is one epoch's quality measurement — the element of
// the ring served at /debug/quality.
type QualitySnapshot = quality.Snapshot

// ErrBacklog is returned by Live.Ingest when the bounded ingest queue
// is full — backpressure to surface to the caller (HTTP 429).
var ErrBacklog = stream.ErrBacklog

// ErrDraining is returned by Live.Ingest during shutdown.
var ErrDraining = stream.ErrDraining

// ErrReadOnly is returned by Ingest and ForceRebuild on a follower —
// writes belong on the leader.
var ErrReadOnly = stream.ErrReadOnly

// LiveEpoch is one immutable published model state: a frozen corpus,
// its clustering, and the documents it was built from. Readers may hold
// it indefinitely; later epochs never mutate earlier ones.
type LiveEpoch struct {
	// Epoch numbers published states from 1 (genesis).
	Epoch int64
	// Corpus is the frozen corpus — safe for Similarity, ClusterC etc.,
	// but do not Append to it (grow through Live.Ingest).
	Corpus *Corpus
	// Clustering is the epoch's clustering with per-cluster top terms.
	Clustering *Clustering
	// Docs holds the admitted documents (URL + HTML) in corpus order.
	Docs []Document
	// Rebuilt marks epochs produced by a full re-cluster (drift or
	// forced) rather than a mini-batch assignment.
	Rebuilt bool
	// SearchLabels are the epoch's per-cluster discriminative labels
	// from the search index (nil without LiveConfig.Search) — available
	// to OnPublish observers even during construction, before the Live
	// handle exists.
	SearchLabels []string

	classifier *icafc.Classifier
}

// Classify assigns a document to this epoch's nearest cluster —
// lock-free with respect to ingestion, because the epoch is frozen.
func (e *LiveEpoch) Classify(d Document) (Prediction, bool, error) {
	fp, err := form.Parse(d.URL, d.HTML, e.Corpus.weights)
	if err != nil {
		return Prediction{}, false, fmt.Errorf("cafc: %s: %w", d.URL, err)
	}
	p, ok := e.classifier.Classify(fp)
	return Prediction{Cluster: p.Cluster, Label: p.Label, Similarity: p.Similarity}, ok, nil
}

// LiveStatus summarizes the live pipeline.
type LiveStatus struct {
	Epoch         int64
	Pages         int
	QueueDepth    int
	QueueCap      int
	Ingested      int64
	Skipped       int64
	Rejected      int64
	Batches       int64
	Rebuilds      int64
	WALRecords    int64
	WALErrors     int64
	DriftFraction float64
	Draining      bool

	// LastPublish is when the current epoch was swapped in (zero before
	// the first publish); EpochAgeSeconds is its age at Status time.
	LastPublish     time.Time
	EpochAgeSeconds float64
	// LastRebuildAt / LastRebuildSeconds record the completion time and
	// wall-clock duration of the most recent full re-cluster.
	LastRebuildAt      time.Time
	LastRebuildSeconds float64
	// IngestWorkers is the resolved parse/embed shard count.
	IngestWorkers int
	// WALPending counts WAL records buffered under group commit but not
	// yet fsynced (0 with group commit off or no durable store).
	WALPending int
	// IngestBusyFraction is the share of wall-clock the ingest worker
	// has spent applying batches since start — ≈1.0 means ingest is
	// saturated and the queue is the next thing to fill.
	IngestBusyFraction float64
}

// Live is a streaming directory: Ingest feeds documents through a
// bounded queue into batch workers that grow the corpus incrementally
// and publish epoch-versioned models; Epoch is the lock-free read side.
type Live struct {
	inner  *stream.Live
	store  *stream.Store
	pub    atomic.Pointer[epochCell]
	qm     *quality.Monitor
	search *searcher

	weights form.Weights
	retry   *Retry
	skip    bool

	// follower marks a read-only replica: no ingest worker runs, Ingest
	// and ForceRebuild fail with ErrReadOnly, and the model advances only
	// through ApplyFrame (driven by a replication tailer).
	follower bool
	dir      string
}

// NewLive starts a live directory from an already-built corpus and its
// clustering (the genesis epoch). docs must be the documents the corpus
// was built from — their HTML backs per-epoch content artifacts (the
// directory UI) and, with cfg.Dir set, the WAL's genesis record. A nil
// corpus or an empty one starts cold at epoch 0: the first ingested
// batch founds the model (and /healthz-style readiness should gate on
// Epoch() != nil).
func NewLive(corpus *Corpus, docs []Document, cl *Clustering, cfg LiveConfig, opts ...Options) (*Live, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if corpus == nil {
		var err error
		corpus, err = NewCorpus(nil, o)
		if err != nil {
			return nil, err
		}
	}

	l := &Live{}
	scfg, err := l.streamConfig(corpus, cfg)
	if err != nil {
		return nil, err
	}

	if l.store != nil && l.store.RecordCount() > 0 {
		// Reusing a non-empty store for a fresh genesis would fork
		// history; refuse and point the caller at RecoverLive.
		l.store.Close()
		return nil, fmt.Errorf("cafc: NewLive: %s already holds a WAL — use RecoverLive", cfg.Dir)
	}
	var genesis *stream.Epoch
	if corpus.Len() > 0 {
		if cl == nil {
			return nil, fmt.Errorf("cafc: NewLive: non-empty corpus needs a genesis clustering")
		}
		genesis = genesisEpoch(corpus, docs, cl)
		if l.store != nil {
			if err := l.store.Append(stream.Record{Docs: toStreamDocs(docs)}); err != nil {
				l.store.Close()
				return nil, err
			}
			genesis.WALRecords = 1
		}
	}
	l.inner = stream.New(scfg, genesis, nil)
	if genesis != nil && l.store != nil {
		if err := scfg.SaveSnapshot(genesis); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// RecoverLive restarts a durable live directory from cfg.Dir: the
// latest snapshot is loaded, the WAL tail beyond the snapshot's offset
// is replayed through the same batch pipeline, and the result is the
// exact pre-crash epoch. opts re-attach run options (Metrics, Retry),
// as with LoadCorpus. An empty directory starts cold, same as NewLive
// with no corpus.
//
// The genesis clustering is recomputed deterministically from the
// loaded corpus (seeded k-means); hub-seeded genesis assignments are
// not persisted.
func RecoverLive(cfg LiveConfig, opts ...Options) (*Live, error) {
	return recoverLive(cfg, false, opts...)
}

// RecoverFollower opens (or resumes) a read-only follower on cfg.Dir:
// recovery is exactly RecoverLive's — snapshot, deterministic genesis
// re-cluster, WAL-tail replay — but the resulting pipeline has no
// ingest worker. Records arrive only through ApplyFrame, fed by a
// replication tailer copying the leader's WAL verbatim (see
// internal/repl); Ingest and ForceRebuild fail with ErrReadOnly.
// Because the local WAL is a byte-identical prefix of the leader's and
// replay is deterministic, a follower at epoch E equals a leader
// recovered at epoch E.
func RecoverFollower(cfg LiveConfig, opts ...Options) (*Live, error) {
	return recoverLive(cfg, true, opts...)
}

func recoverLive(cfg LiveConfig, follower bool, opts ...Options) (*Live, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cafc: RecoverLive: Dir required")
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	store, err := stream.Open(cfg.Dir)
	if err != nil {
		return nil, err
	}

	var corpus *Corpus
	var info SnapshotInfo
	if rc, serr := store.OpenSnapshot(); serr == nil {
		corpus, info, err = LoadSnapshot(rc, o)
		rc.Close()
		if err != nil {
			store.Close()
			return nil, err
		}
	} else if serr != stream.ErrNoSnapshot {
		store.Close()
		return nil, serr
	} else {
		corpus, err = NewCorpus(nil, o)
		if err != nil {
			store.Close()
			return nil, err
		}
	}

	recs, err := store.Records()
	if err != nil {
		store.Close()
		return nil, err
	}
	off := int(info.WALOffset)
	if off > len(recs) {
		off = len(recs)
	}

	l := &Live{store: store, follower: follower}
	scfg, err := l.streamConfigWithStore(corpus, cfg, store)
	if err != nil {
		return nil, err
	}

	var genesis *stream.Epoch
	if corpus.Len() > 0 {
		// Documents covered by the snapshot contribute their HTML from
		// the WAL prefix; the model itself comes from the snapshot.
		docs := matchDocs(corpus.urls, recs[:off])
		res := icafc.CAFCC(corpus.model, scfg.K, rand.New(rand.NewSource(cfg.Seed+1)))
		genesis = &stream.Epoch{
			Seq:        max64(info.Epoch, 1),
			Model:      corpus.model.Clone(),
			Result:     res,
			Docs:       docs,
			WALRecords: int64(off),
		}
	}
	if follower {
		l.inner = stream.NewManual(scfg, genesis, recs[off:])
	} else {
		l.inner = stream.New(scfg, genesis, recs[off:])
	}
	return l, nil
}

// ApplyFrame (followers only) appends one replicated WAL frame to the
// local store verbatim, then applies its record through the batch
// pipeline without re-logging it. This is cafc.Live's implementation of
// the replication target: the tailer in internal/repl calls it for each
// frame pulled off the leader.
func (l *Live) ApplyFrame(f stream.Frame) error {
	if !l.follower {
		return fmt.Errorf("cafc: ApplyFrame: not a follower")
	}
	if l.store != nil {
		if err := l.store.AppendFrame(f); err != nil {
			return err
		}
	}
	return l.inner.ApplyReplicated(f.Rec)
}

// WALRecords returns the local WAL's intact record count (0 without a
// durable store) — the replication tail position.
func (l *Live) WALRecords() int64 {
	if l.store == nil {
		return 0
	}
	return l.store.RecordCount()
}

// AppliedEpoch returns the latest published epoch number (0 while
// cold).
func (l *Live) AppliedEpoch() int64 {
	if e := l.inner.Current(); e != nil {
		return e.Seq
	}
	return 0
}

// StateDir returns the durable state directory ("" when memory-only).
func (l *Live) StateDir() string { return l.dir }

// streamConfig opens the store named by cfg.Dir (if any) and builds the
// internal stream configuration.
func (l *Live) streamConfig(corpus *Corpus, cfg LiveConfig) (stream.Config, error) {
	var store *stream.Store
	if cfg.Dir != "" {
		var err error
		store, err = stream.Open(cfg.Dir)
		if err != nil {
			return stream.Config{}, err
		}
	}
	return l.streamConfigWithStore(corpus, cfg, store)
}

func (l *Live) streamConfigWithStore(corpus *Corpus, cfg LiveConfig, store *stream.Store) (stream.Config, error) {
	l.store = store
	l.dir = cfg.Dir
	l.weights = corpus.weights
	l.retry = corpus.retry
	l.skip = corpus.skipNonSearchable
	k := cfg.K
	if k == 0 {
		k = 8
	}
	scfg := stream.Config{
		K:                 k,
		Seed:              cfg.Seed,
		QueueSize:         cfg.QueueSize,
		BatchSize:         cfg.BatchSize,
		FlushInterval:     cfg.FlushInterval,
		DriftThreshold:    cfg.DriftThreshold,
		Weights:           corpus.weights,
		Uniform:           corpus.model.Uniform,
		SkipNonSearchable: corpus.skipNonSearchable,
		Metrics:           corpus.model.Metrics,
		Store:             store,
		SnapshotEvery:     cfg.SnapshotEvery,
		IngestWorkers:     cfg.IngestWorkers,
		CommitWindow:      cfg.CommitWindow,
	}
	if !l.follower {
		// Group commit is leader-only (the stream layer enforces this for
		// manual pipelines too): a follower's durable record count is its
		// replication resume offset and must never lag what it applied.
		scfg.GroupCommit = cfg.GroupCommit
	}
	if store != nil {
		scfg.SaveSnapshot = func(e *stream.Epoch) error {
			c := wrapCorpus(e, l.weights, l.retry, l.skip)
			return store.WriteSnapshot(func(w io.Writer) error {
				return c.SaveSnapshot(w, SnapshotInfo{Epoch: e.Seq, WALOffset: e.WALRecords})
			})
		}
	}
	if q := cfg.Quality; q != nil {
		seed := q.Seed
		if seed == 0 {
			seed = cfg.Seed
		}
		l.qm = quality.New(quality.Config{
			SampleSize: q.SampleSize,
			Seed:       seed,
			RingSize:   q.RingSize,
			Labels:     q.Labels,
			Metrics:    corpus.model.Metrics,
		})
	}
	if sc := cfg.Search; sc != nil {
		l.search = &searcher{
			b:       search.NewBuilder(corpus.model.Metrics),
			opts:    search.Options{MaxK: sc.MaxK, CacheSize: sc.CacheSize, MaxFacets: sc.MaxFacets},
			weights: corpus.weights,
		}
	}
	scfg.OnPublish = func(e *stream.Epoch) {
		// Index before the swap so Epoch() == E implies the search
		// snapshot is already at E — no torn reads across the two views.
		var snap *search.Snapshot
		if l.search != nil {
			l.search.sync(e)
			snap = l.search.snap.Load()
		}
		// The expensive public view (clustering maps, top-term labels,
		// classifier, document copies — all O(corpus)) materializes on
		// the first Epoch() read, not here: during bulk ingest most
		// epochs are superseded before anyone looks at them, and the
		// ingest worker should only ever pay O(batch) per publish.
		cell := &epochCell{conv: func() *LiveEpoch {
			le := convertEpoch(e, l.weights, l.retry, l.skip)
			if snap != nil {
				le.SearchLabels = snap.ClusterLabels()
			}
			return le
		}}
		l.pub.Store(cell)
		if l.qm != nil {
			l.qm.ObserveEpoch(qualityEpoch(e), time.Now())
		}
		if cfg.OnPublish != nil {
			cfg.OnPublish(cell.get())
		}
	}
	return scfg, nil
}

// epochCell defers convertEpoch until a reader actually wants the
// epoch. The once makes materialization safe under concurrent Epoch()
// readers; conv is dropped after it runs so the closure's captures
// (beyond the epoch itself) are not pinned.
type epochCell struct {
	once sync.Once
	conv func() *LiveEpoch
	le   *LiveEpoch
}

func (c *epochCell) get() *LiveEpoch {
	c.once.Do(func() {
		c.le = c.conv()
		c.conv = nil
	})
	return c.le
}

// qualityEpoch adapts a published stream epoch into the monitor's view.
// Everything handed over is frozen: the model, the assignment and the
// centroids never mutate after publish.
func qualityEpoch(e *stream.Epoch) quality.Epoch {
	return quality.Epoch{
		Seq:       e.Seq,
		Space:     e.Model,
		Assign:    e.Result.Assign,
		K:         e.Result.K,
		Centroids: e.Result.Centroids,
		Rebuilt:   e.Rebuilt,
		URL:       func(i int) string { return e.Model.Pages[i].URL },
	}
}

// Ingest offers one document to the stream; it never blocks (ErrBacklog
// on a full queue, ErrDraining during shutdown).
func (l *Live) Ingest(d Document) error {
	return l.inner.Ingest(stream.Doc{URL: d.URL, HTML: d.HTML})
}

// Epoch returns the latest published epoch, or nil before the first
// model exists (cold start). The read is an atomic pointer load; the
// conversion (clustering view, top-term labels, classifier) runs once
// on the first read of each epoch and is cached.
func (l *Live) Epoch() *LiveEpoch {
	c := l.pub.Load()
	if c == nil {
		return nil
	}
	return c.get()
}

// ForceRebuild schedules a full re-cluster (WAL-logged, so replay
// reproduces it).
func (l *Live) ForceRebuild() error { return l.inner.ForceRebuild() }

// Status summarizes the pipeline.
func (l *Live) Status() LiveStatus {
	s := l.inner.Status()
	ls := LiveStatus{
		Epoch:              s.Epoch,
		Pages:              s.Pages,
		QueueDepth:         s.QueueDepth,
		QueueCap:           s.QueueCap,
		Ingested:           s.Ingested,
		Skipped:            s.Skipped,
		Rejected:           s.Rejected,
		Batches:            s.Batches,
		Rebuilds:           s.Rebuilds,
		WALRecords:         s.WALRecords,
		WALErrors:          s.WALErrors,
		DriftFraction:      s.DriftFraction,
		Draining:           s.Draining,
		LastPublish:        s.LastPublish,
		LastRebuildAt:      s.LastRebuildAt,
		LastRebuildSeconds: s.LastRebuildSeconds,
		IngestWorkers:      s.IngestWorkers,
		WALPending:         s.WALPending,
		IngestBusyFraction: s.IngestBusyFraction,
	}
	if !ls.LastPublish.IsZero() {
		ls.EpochAgeSeconds = time.Since(ls.LastPublish).Seconds()
	}
	return ls
}

// Quality returns the latest quality snapshot (ok=false without a
// configured monitor or before the first published epoch).
func (l *Live) Quality() (QualitySnapshot, bool) {
	if l.qm == nil {
		return QualitySnapshot{}, false
	}
	return l.qm.Latest()
}

// QualityHistory returns the retained quality snapshots, oldest first
// (nil without a configured monitor).
func (l *Live) QualityHistory() []QualitySnapshot {
	if l.qm == nil {
		return nil
	}
	return l.qm.Snapshots()
}

// Drain gracefully shuts the pipeline down: intake stops (Ingest fails
// with ErrDraining), queued documents flush through the batch path, a
// final snapshot checkpoints the stream (with cfg.Dir), and the worker
// exits. Bounded by ctx.
func (l *Live) Drain(ctx context.Context) error {
	err := l.inner.Drain(ctx)
	if l.store != nil {
		if cerr := l.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close hard-stops the pipeline without flushing or snapshotting — the
// crash-simulation path. Applied batches are already WAL-durable.
func (l *Live) Close() {
	l.inner.Close()
	if l.store != nil {
		l.store.Close()
	}
}

// genesisEpoch reconstructs the internal clustering result from a
// public Clustering and freezes the corpus state as epoch 1.
func genesisEpoch(c *Corpus, docs []Document, cl *Clustering) *stream.Epoch {
	assign := make([]int, len(c.urls))
	for i, u := range c.urls {
		if a, ok := cl.Assign[u]; ok {
			assign[i] = a
		} else {
			assign[i] = -1
		}
	}
	k := len(cl.Clusters)
	members := cluster.Members(assign, k)
	centroids := make([]cluster.Point, k)
	for i := range centroids {
		centroids[i] = c.model.Centroid(members[i])
	}
	return &stream.Epoch{
		Seq:    1,
		Model:  c.model.Clone(),
		Result: cluster.Result{Assign: assign, K: k, Centroids: centroids},
		Docs:   matchDocList(c.urls, docs),
	}
}

// convertEpoch wraps an internal epoch in the public types, including a
// ready-to-use nearest-centroid classifier labelled with each cluster's
// top terms.
func convertEpoch(e *stream.Epoch, w form.Weights, r *Retry, skip bool) *LiveEpoch {
	c := wrapCorpus(e, w, r, skip)
	cl := c.newClustering(e.Result)
	labels := make([]string, len(cl.TopTerms))
	for i, terms := range cl.TopTerms {
		labels[i] = strings.Join(terms, " ")
	}
	return &LiveEpoch{
		Epoch:      e.Seq,
		Corpus:     c,
		Clustering: cl,
		Docs:       toDocuments(e.Docs),
		Rebuilt:    e.Rebuilt,
		classifier: icafc.NewClassifierFromCentroids(e.Model, e.Result.Centroids, labels),
	}
}

// wrapCorpus views an epoch's frozen model as a public Corpus.
func wrapCorpus(e *stream.Epoch, w form.Weights, r *Retry, skip bool) *Corpus {
	urls := make([]string, len(e.Model.Pages))
	for i, p := range e.Model.Pages {
		urls[i] = p.URL
	}
	return &Corpus{model: e.Model, urls: urls, weights: w, retry: r, skipNonSearchable: skip}
}

// matchDocs recovers the admitted documents for a model's URL sequence
// from WAL records: documents are matched in order against the URLs, so
// skipped (non-searchable) WAL entries fall out exactly as the original
// admission decided.
func matchDocs(urls []string, recs []stream.Record) []stream.Doc {
	out := make([]stream.Doc, 0, len(urls))
	i := 0
	for _, rec := range recs {
		for _, d := range rec.Docs {
			if i < len(urls) && d.URL == urls[i] {
				out = append(out, d)
				i++
			}
		}
	}
	// URLs with no WAL backing (snapshot-only corpora) keep an empty
	// HTML body; the model still serves them.
	for ; i < len(urls); i++ {
		out = append(out, stream.Doc{URL: urls[i]})
	}
	return out
}

// matchDocList aligns caller-provided documents with the admitted URL
// order, dropping skipped ones.
func matchDocList(urls []string, docs []Document) []stream.Doc {
	byURL := make(map[string]string, len(docs))
	for _, d := range docs {
		byURL[d.URL] = d.HTML
	}
	out := make([]stream.Doc, len(urls))
	for i, u := range urls {
		out[i] = stream.Doc{URL: u, HTML: byURL[u]}
	}
	return out
}

func toStreamDocs(docs []Document) []stream.Doc {
	out := make([]stream.Doc, len(docs))
	for i, d := range docs {
		out[i] = stream.Doc{URL: d.URL, HTML: d.HTML}
	}
	return out
}

func toDocuments(docs []stream.Doc) []Document {
	out := make([]Document, len(docs))
	for i, d := range docs {
		out[i] = Document{URL: d.URL, HTML: d.HTML}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
