package cafc

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cafc/internal/repl"
)

func waitLive(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLiveIngestAdvancesEpochs(t *testing.T) {
	docs, _, _, _ := testDocs(t, 21, 40)
	corpus, err := NewCorpus(docs[:20])
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 1)
	l, err := NewLive(corpus, docs[:20], cl, LiveConfig{
		K: 4, Seed: 1, BatchSize: 8, FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	e := l.Epoch()
	if e == nil || e.Epoch != 1 || e.Corpus.Len() != 20 {
		t.Fatalf("genesis epoch wrong: %+v", e)
	}
	if len(e.Clustering.Clusters) != 4 {
		t.Fatalf("genesis clustering lost: %d clusters", len(e.Clustering.Clusters))
	}

	for _, d := range docs[20:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "ingested docs applied", func() bool {
		return l.Epoch().Corpus.Len() == 40
	})
	e = l.Epoch()
	if e.Epoch < 2 {
		t.Errorf("epoch did not advance: %d", e.Epoch)
	}
	if len(e.Docs) != 40 {
		t.Errorf("epoch docs = %d", len(e.Docs))
	}
	// The per-epoch classifier answers without touching the pipeline.
	if _, _, err := e.Classify(docs[0]); err != nil {
		t.Errorf("classify: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := l.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Ingest(docs[0]); !errors.Is(err, ErrDraining) {
		t.Errorf("Ingest after Drain = %v", err)
	}
}

// TestLiveRecoverAfterCrash is the acceptance pin for durability: a live
// directory hard-killed mid-flight (no final snapshot) must recover to
// the exact pre-crash epoch from the genesis snapshot plus WAL replay.
func TestLiveRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	docs, _, _, _ := testDocs(t, 23, 48)
	corpus, err := NewCorpus(docs[:16])
	if err != nil {
		t.Fatal(err)
	}
	cl := corpus.ClusterC(4, 9)
	// DriftThreshold 2 disables drift rebuilds so the replayed epochs are
	// structurally identical regardless of float noise; epoch accounting
	// itself is noise-free either way (one epoch per WAL record).
	cfg := LiveConfig{
		K: 4, Seed: 9, BatchSize: 8, FlushInterval: 10 * time.Millisecond,
		DriftThreshold: 2, Dir: dir,
	}
	l, err := NewLive(corpus, docs[:16], cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[16:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "pre-crash ingest applied", func() bool {
		return l.Epoch().Corpus.Len() == 48
	})
	pre := l.Epoch()
	preStatus := l.Status()
	if pre.Epoch < 2 || preStatus.WALRecords != pre.Epoch {
		t.Fatalf("pre-crash state inconsistent: epoch %d, WAL records %d",
			pre.Epoch, preStatus.WALRecords)
	}
	l.Close() // crash: the queue-flush + final-snapshot path never runs

	// A fresh NewLive on the same dir must refuse to fork history.
	if _, err := NewLive(corpus, docs[:16], cl, cfg); err == nil {
		t.Fatal("NewLive on a dirty store must refuse")
	}

	r, err := RecoverLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Epoch()
	if got == nil || got.Epoch != pre.Epoch {
		t.Fatalf("recovered epoch %v, want %d", got, pre.Epoch)
	}
	if got.Corpus.Len() != 48 || len(got.Docs) != 48 {
		t.Fatalf("recovered corpus %d pages, %d docs; want 48/48",
			got.Corpus.Len(), len(got.Docs))
	}
	wantURLs := pre.Corpus.URLs()
	for i, u := range got.Corpus.URLs() {
		if u != wantURLs[i] {
			t.Fatalf("url[%d] = %s, want %s", i, u, wantURLs[i])
		}
	}
	for i, d := range got.Docs {
		if d.HTML == "" {
			t.Fatalf("doc %d (%s) lost its HTML across recovery", i, d.URL)
		}
	}
	if s := r.Status(); s.WALRecords != preStatus.WALRecords {
		t.Errorf("WAL records %d, want %d", s.WALRecords, preStatus.WALRecords)
	}

	// The recovered pipeline is fully live: ingest more, drain cleanly
	// (writing a snapshot), and recover again from the snapshot alone.
	extra, _, _, _ := testDocs(t, 29, 8)
	for _, d := range extra {
		if err := r.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "post-recovery ingest applied", func() bool {
		return r.Epoch().Corpus.Len() == 56
	})
	finalEpoch := r.Epoch().Epoch
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	r2, err := RecoverLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Epoch(); got.Epoch != finalEpoch || got.Corpus.Len() != 56 {
		t.Errorf("second recovery: epoch %d (%d pages), want %d (56)",
			got.Epoch, got.Corpus.Len(), finalEpoch)
	}
}

// TestLiveQualityInert is the quality-layer inertness pin at the public
// API: a live directory with the quality monitor attached (registry and
// all) must publish bit-identical clusterings to one without. The
// comparison is over the final forced re-cluster, which is deterministic
// for a fixed seed and document sequence regardless of how the
// intermediate batches fell.
func TestLiveQualityInert(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 31, 40)

	run := func(q *QualityConfig, reg *Registry) (*Live, map[string]int) {
		t.Helper()
		l, err := NewLive(nil, nil, nil, LiveConfig{
			K: 4, Seed: 7, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
			Quality: q,
		}, Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs {
			if err := l.Ingest(d); err != nil {
				t.Fatal(err)
			}
		}
		waitLive(t, "all docs applied", func() bool {
			e := l.Epoch()
			return e != nil && e.Corpus.Len() == len(docs)
		})
		if err := l.ForceRebuild(); err != nil {
			t.Fatal(err)
		}
		waitLive(t, "forced rebuild published", func() bool {
			e := l.Epoch()
			return e.Rebuilt && e.Corpus.Len() == len(docs)
		})
		return l, l.Epoch().Clustering.Assign
	}

	reg := NewRegistry()
	withQ, assignQ := run(&QualityConfig{SampleSize: 64, Labels: labels}, reg)
	defer withQ.Close()
	plain, assignPlain := run(nil, nil)
	defer plain.Close()

	if len(assignQ) != len(docs) {
		t.Fatalf("assignment covers %d of %d docs", len(assignQ), len(docs))
	}
	for u, c := range assignPlain {
		if assignQ[u] != c {
			t.Fatalf("quality monitor changed the clustering: %s → %d vs %d", u, assignQ[u], c)
		}
	}

	// The monitor observed: latest snapshot reflects the rebuilt epoch,
	// labels flowed through, and the gauges landed in the registry.
	snap, ok := withQ.Quality()
	if !ok {
		t.Fatal("Quality() not ok with a configured monitor")
	}
	if snap.Pages != len(docs) || snap.K != 4 {
		t.Fatalf("snapshot = %d pages / k=%d, want %d / 4", snap.Pages, snap.K, len(docs))
	}
	if snap.Labeled != len(docs) || snap.FMeasure <= 0 {
		t.Fatalf("label quality missing: labeled=%d F=%v", snap.Labeled, snap.FMeasure)
	}
	if hist := withQ.QualityHistory(); len(hist) == 0 || hist[len(hist)-1].Epoch != snap.Epoch {
		t.Fatalf("QualityHistory inconsistent with Latest: %d entries", len(hist))
	}
	if v := reg.Gauge("quality_sample_size").Value(); v == 0 {
		t.Fatalf("quality gauges not published (sample_size = %v)", v)
	}

	// Without a monitor the accessors answer empty, not panic.
	if _, ok := plain.Quality(); ok {
		t.Fatal("Quality() ok without a monitor")
	}
	if h := plain.QualityHistory(); h != nil {
		t.Fatalf("QualityHistory without a monitor = %v", h)
	}
}

// assertReplicaEqual pins the tentpole invariant at the public API: a
// follower that has tailed to the leader's epoch serves the identical
// directory — same epoch and WAL accounting, same corpus in the same
// order, same cluster assignment for every URL.
func assertReplicaEqual(t *testing.T, f, l *Live) {
	t.Helper()
	fe, le := f.Epoch(), l.Epoch()
	if fe == nil || le == nil {
		t.Fatalf("missing epoch: follower %v leader %v", fe, le)
	}
	if fe.Epoch != le.Epoch {
		t.Fatalf("follower at epoch %d, leader at %d", fe.Epoch, le.Epoch)
	}
	if fs, ls := f.Status(), l.Status(); fs.WALRecords != ls.WALRecords {
		t.Fatalf("follower WAL records %d, leader %d", fs.WALRecords, ls.WALRecords)
	}
	if !reflect.DeepEqual(fe.Corpus.URLs(), le.Corpus.URLs()) {
		t.Fatal("follower corpus differs from leader")
	}
	if !reflect.DeepEqual(fe.Clustering.Assign, le.Clustering.Assign) {
		t.Fatal("follower cluster assignment differs from leader")
	}
}

// TestLiveFollowerReplication drives the replication stack at the
// public API: bootstrap a follower from a live leader's state dir,
// verify it refuses writes, tail it to parity, move the leader on, tail
// again — equal state at every convergence point.
func TestLiveFollowerReplication(t *testing.T) {
	docs, _, _, _ := testDocs(t, 37, 48)
	ldir, fdir := t.TempDir(), t.TempDir()
	cfg := LiveConfig{
		K: 4, Seed: 7, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
		Dir: ldir,
	}
	l, err := NewLive(nil, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, d := range docs[:32] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "leader ingest applied", func() bool {
		e := l.Epoch()
		return e != nil && e.Corpus.Len() == 32
	})

	ctx := context.Background()
	if err := repl.Bootstrap(ctx, repl.DirSource{Dir: ldir}, fdir); err != nil {
		t.Fatal(err)
	}
	fcfg := cfg
	fcfg.Dir = fdir
	f, err := RecoverFollower(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Read-only: every mutation is refused with ErrReadOnly.
	if err := f.Ingest(docs[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Ingest = %v, want ErrReadOnly", err)
	}
	if err := f.ForceRebuild(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower ForceRebuild = %v, want ErrReadOnly", err)
	}

	tail := &repl.Tailer{Source: repl.DirSource{Dir: ldir}, Target: f}
	if err := tail.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	assertReplicaEqual(t, f, l)

	// The leader moves on; the follower closes the gap from its last
	// applied record.
	for _, d := range docs[32:] {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "second leader ingest applied", func() bool {
		return l.Epoch().Corpus.Len() == 48
	})
	if err := tail.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if lag := tail.Lag(); lag != 0 {
		t.Fatalf("lag after sync = %d, want 0", lag)
	}
	assertReplicaEqual(t, f, l)

	// The follower's classifier answers from its own replicated epoch.
	if _, _, err := f.Epoch().Classify(docs[0]); err != nil {
		t.Fatalf("follower classify: %v", err)
	}
}

// TestLiveReplicationMetricsInert is the replication twin of
// TestLiveQualityInert: tailing with the full metrics registry attached
// must replicate bit-identical state to tailing with none, and the
// replication gauges must land on applied-epoch / zero-lag values.
func TestLiveReplicationMetricsInert(t *testing.T) {
	docs, _, _, _ := testDocs(t, 41, 32)
	ldir := t.TempDir()
	cfg := LiveConfig{
		K: 4, Seed: 3, BatchSize: 8, FlushInterval: 5 * time.Millisecond,
		Dir: ldir,
	}
	l, err := NewLive(nil, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := l.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	waitLive(t, "leader ingest applied", func() bool {
		e := l.Epoch()
		return e != nil && e.Corpus.Len() == len(docs)
	})
	leaderEpoch := l.Epoch().Epoch
	l.Close() // hard stop: the WAL alone defines the history followers see

	run := func(reg *Registry) *Live {
		t.Helper()
		fdir := t.TempDir()
		if err := repl.Bootstrap(context.Background(), repl.DirSource{Dir: ldir}, fdir); err != nil {
			t.Fatal(err)
		}
		fcfg := cfg
		fcfg.Dir = fdir
		f, err := RecoverFollower(fcfg, Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		tail := &repl.Tailer{Source: repl.DirSource{Dir: ldir}, Target: f, Metrics: reg}
		if err := tail.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
		return f
	}

	reg := NewRegistry()
	fm := run(reg)
	defer fm.Close()
	fn := run(nil)
	defer fn.Close()
	assertReplicaEqual(t, fm, fn)

	if got := reg.Gauge("replication_applied_epoch").Value(); got != float64(leaderEpoch) {
		t.Fatalf("replication_applied_epoch = %v, want %d", got, leaderEpoch)
	}
	if got := reg.Gauge("replication_lag_epochs").Value(); got != 0 {
		t.Fatalf("replication_lag_epochs = %v, want 0", got)
	}
}
