package cafc

import (
	"math"
	"testing"
)

// TestAppendReembedEquivalentToOneShot pins the incremental path to the
// paper's batch pipeline: growing a corpus with Append over many batches
// and then re-embedding must yield the same model — and the same CAFC-C
// clustering under the same seed — as building the corpus in one shot.
// 454 pages matches the paper's experimental corpus size (Section 6).
func TestAppendReembedEquivalentToOneShot(t *testing.T) {
	docs, labels, _, _ := testDocs(t, 2007, 454)

	oneShot, err := NewCorpus(docs)
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot.ClusterC(8, 5)

	inc, err := NewCorpus(docs[:50])
	if err != nil {
		t.Fatal(err)
	}
	for lo := 50; lo < len(docs); lo += 64 {
		hi := lo + 64
		if hi > len(docs) {
			hi = len(docs)
		}
		added, err := inc.Append(docs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if added != hi-lo {
			t.Fatalf("batch [%d:%d]: added %d", lo, hi, added)
		}
	}
	if inc.Len() != oneShot.Len() {
		t.Fatalf("incremental corpus has %d pages, one-shot %d", inc.Len(), oneShot.Len())
	}
	// The final DF tables are order-independent, so after a re-embed the
	// two models agree on every pairwise similarity (up to float ulp
	// noise from term-interning order).
	inc.Reembed()
	for _, pair := range [][2]int{{0, 1}, {0, 453}, {100, 350}, {222, 223}} {
		a, b := oneShot.Similarity(pair[0], pair[1]), inc.Similarity(pair[0], pair[1])
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("sim(%d,%d): one-shot %v vs incremental %v", pair[0], pair[1], a, b)
		}
	}

	got := inc.ClusterC(8, 5)
	wantE, wantF := want.Quality(labels)
	gotE, gotF := got.Quality(labels)
	if math.Abs(wantE-gotE) > 1e-9 || math.Abs(wantF-gotF) > 1e-9 {
		t.Errorf("quality: one-shot (E=%v F=%v) vs incremental (E=%v F=%v)",
			wantE, wantF, gotE, gotF)
	}
	for u, c := range want.Assign {
		if got.Assign[u] != c {
			t.Errorf("%s: one-shot cluster %d, incremental %d", u, c, got.Assign[u])
		}
	}
}

// TestAppendSkipPolicy pins Append to the corpus's admission policy.
func TestAppendSkipPolicy(t *testing.T) {
	docs, _, _, _ := testDocs(t, 3, 8)
	formless := Document{URL: "http://x.example/", HTML: "<p>no form</p>"}

	strict, err := NewCorpus(docs[:4])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Append([]Document{formless}); err == nil {
		t.Fatal("strict corpus must reject a formless doc")
	}

	lax, err := NewCorpus(docs[:4], Options{SkipNonSearchable: true})
	if err != nil {
		t.Fatal(err)
	}
	added, err := lax.Append([]Document{formless, docs[4]})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || lax.Len() != 5 || len(lax.Skipped) != 1 {
		t.Errorf("skip bookkeeping: added=%d len=%d skipped=%v", added, lax.Len(), lax.Skipped)
	}
}
